#include "runner/scenario.hpp"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "common/expects.hpp"
#include "baselines/aloha.hpp"
#include "baselines/csma.hpp"
#include "baselines/maca.hpp"
#include "baselines/slotted_aloha.hpp"
#include "radio/propagation.hpp"
#include "sim/traffic.hpp"

namespace drn::runner {

std::optional<MacKind> parse_mac(std::string_view name) {
  if (name == "scheme") return MacKind::kScheme;
  if (name == "aloha") return MacKind::kAloha;
  if (name == "slotted") return MacKind::kSlottedAloha;
  if (name == "csma") return MacKind::kCsma;
  if (name == "maca") return MacKind::kMaca;
  return std::nullopt;
}

std::string_view mac_name(MacKind mac) {
  switch (mac) {
    case MacKind::kScheme: return "scheme";
    case MacKind::kAloha: return "aloha";
    case MacKind::kSlottedAloha: return "slotted";
    case MacKind::kCsma: return "csma";
    case MacKind::kMaca: return "maca";
  }
  return "?";
}

radio::ReceptionCriterion scheme_criterion() {
  return radio::ReceptionCriterion(radio::Hertz{200.0e6},
                                   radio::BitsPerSecond{1.0e6},
                                   radio::Decibels{5.0});
}

core::ScheduledNetworkConfig multihop_config() {
  core::ScheduledNetworkConfig cfg;
  cfg.target_received_w = 1.0e-9;
  cfg.max_power_w = 1.6e-4;
  cfg.exact_clock_models = false;
  cfg.max_drift_ppm = 20.0;
  cfg.rendezvous_noise_s = 1.0e-6;
  return cfg;
}

Scenario make_scenario(std::size_t stations, double region_m,
                       std::uint64_t seed,
                       core::ScheduledNetworkConfig net_cfg) {
  Rng rng(seed);
  auto placement = geo::uniform_disc(stations, region_m, rng);
  const radio::FreeSpacePropagation model;
  auto gains = radio::make_dense_gains(placement, model);
  Rng build_rng = rng.split(1);
  auto net =
      core::build_scheduled_network(gains, scheme_criterion(), net_cfg, build_rng);
  const auto graph = routing::Graph::min_energy(
      gains, net_cfg.target_received_w / net_cfg.max_power_w);
  auto tables = routing::RoutingTables::build(graph);
  return Scenario{std::move(placement), std::move(gains), std::move(net),
                  std::move(tables)};
}

TrialResult summarize(const sim::Metrics& m, double total_duration_s) {
  TrialResult r;
  r.offered = m.offered();
  r.delivered = m.delivered();
  r.hop_attempts = m.hop_attempts();
  r.hop_successes = m.hop_successes();
  r.type1_losses = m.losses(sim::LossType::kType1);
  r.type2_losses = m.losses(sim::LossType::kType2);
  r.type3_losses = m.losses(sim::LossType::kType3);
  r.mac_drops = m.mac_drops();
  r.delivery_ratio = m.delivery_ratio();
  r.mean_delay_s = m.delivered() > 0 ? m.delay().mean() : 0.0;
  r.mean_hops = m.delivered() > 0 ? m.hops().mean() : 0.0;
  r.tx_per_hop = m.hop_successes() > 0
                     ? static_cast<double>(m.hop_attempts()) /
                           static_cast<double>(m.hop_successes())
                     : 0.0;
  r.mean_duty = m.mean_duty_cycle(total_duration_s);
  r.aborted_losses = m.losses(sim::LossType::kAborted);
  r.station_leaves = m.station_leaves();
  r.station_joins = m.station_joins();
  r.churn_drops = m.churn_drops();
  r.noise_bursts = m.noise_bursts();
  r.recoveries = m.recovery_s().count();
  r.mean_recovery_s = m.recovery_s().count() > 0 ? m.recovery_s().mean() : 0.0;
  return r;
}

std::unique_ptr<sim::MacProtocol> make_baseline_mac(const ScenarioSpec& spec) {
  switch (spec.mac) {
    case MacKind::kScheme:
      break;  // scheme MACs come from the network builder, not here
    case MacKind::kAloha:
    case MacKind::kSlottedAloha:
    case MacKind::kCsma: {
      baselines::ContentionConfig cc;
      cc.power_w = spec.baseline_power_w;
      cc.max_retries = spec.baseline_max_retries;
      cc.backoff_mean_s = spec.baseline_backoff_mean_s;
      if (spec.mac == MacKind::kAloha)
        return std::make_unique<baselines::PureAloha>(cc);
      if (spec.mac == MacKind::kSlottedAloha)
        return std::make_unique<baselines::SlottedAloha>(
            cc, spec.net.slot_s / 4.0);
      return std::make_unique<baselines::CsmaMac>(
          cc, spec.csma_sense_threshold_w);
    }
    case MacKind::kMaca: {
      baselines::MacaConfig mc;
      mc.power_w = spec.baseline_power_w;
      mc.max_retries = spec.baseline_max_retries;
      mc.backoff_mean_s = spec.baseline_backoff_mean_s;
      mc.data_rate_bps = spec.data_rate_bps;
      return std::make_unique<baselines::MacaMac>(mc);
    }
  }
  DRN_EXPECTS(false);  // make_baseline_mac(kScheme)
  return nullptr;
}

void install_macs(sim::Simulator& sim, Scenario& scenario,
                  const ScenarioSpec& spec) {
  const auto stations = scenario.gains.size();
  if (spec.mac == MacKind::kScheme) {
    for (StationId s = 0; s < stations; ++s)
      sim.set_mac(s, std::move(scenario.net.macs[s]));
    return;
  }
  for (StationId s = 0; s < stations; ++s)
    sim.set_mac(s, make_baseline_mac(spec));
}

TrialResult run_trial(const ScenarioSpec& spec, std::uint64_t seed) {
  auto scenario =
      make_scenario(spec.stations, spec.region_m, seed, spec.net);
  const dynamics::DynamicsConfig& dyn = spec.dynamics;
  // Jammer stations are appended after the real network: they get gains and
  // despreading channels like everyone else, but no traffic, no routes, and
  // the dynamics engine leaves them alone.
  geo::Placement placement = scenario.placement;
  if (dyn.jammer.count > 0) {
    Rng jammer_rng = Rng(seed).split(4);
    placement = dynamics::with_jammers(placement, dyn.jammer.count,
                                       spec.region_m, jammer_rng);
  }
  sim::SimulatorConfig sim_cfg{spec.criterion()};
  sim_cfg.seed = seed;
  sim_cfg.engine = spec.engine;
  std::optional<sim::Simulator> sim_box;
  const auto model = std::make_shared<radio::FreeSpacePropagation>();
  if (spec.engine == radio::InterferenceEngineKind::kNearFar) {
    // Lazy near/far evaluation over the same free-space physics the dense
    // scenario matrix was built from.
    radio::NearFarConfig nf;
    nf.cutoff = radio::Meters{
        spec.engine_cutoff_m > 0.0 ? spec.engine_cutoff_m : 2.0 * spec.region_m};
    nf.cell = radio::Meters{spec.engine_cell_m};
    sim_box.emplace(radio::make_nearfar_engine(placement, model, nf), sim_cfg);
  } else if (dyn.jammer.count > 0) {
    sim_box.emplace(radio::make_dense_gains(placement, *model), sim_cfg);
  } else {
    sim_box.emplace(scenario.gains, sim_cfg);
  }
  sim::Simulator& sim = *sim_box;
  if (dyn.mobility_enabled() &&
      spec.engine != radio::InterferenceEngineKind::kNearFar)
    sim.enable_mobility(placement, model);
  std::unique_ptr<audit::InvariantAuditor> auditor;
  if (spec.audit) {
    auditor = std::make_unique<audit::InvariantAuditor>(sim);
    sim.add_observer(auditor.get());
  }
  // Churn rejoin factory, built from a pre-run snapshot: a scheme station
  // warm-reboots with its flash-stored config and neighbour table (clock
  // models go stale while it is down; beacons re-fit them), a baseline
  // station reboots stateless.
  dynamics::MacFactory rejoin;
  if (dyn.churn_enabled()) {
    if (spec.mac == MacKind::kScheme) {
      std::vector<core::ScheduledStationConfig> cfgs;
      std::vector<core::NeighborTable> tables;
      cfgs.reserve(scenario.net.macs.size());
      tables.reserve(scenario.net.macs.size());
      for (const auto& mac : scenario.net.macs) {
        cfgs.push_back(mac->config());
        tables.push_back(mac->neighbors());
      }
      rejoin = [cfgs = std::move(cfgs),
                tables = std::move(tables)](StationId s) {
        return std::make_unique<core::ScheduledStation>(cfgs[s], tables[s]);
      };
    } else {
      rejoin = [spec](StationId) { return make_baseline_mac(spec); };
    }
  }
  install_macs(sim, scenario, spec);
  if (dyn.jammer.count > 0)
    dynamics::install_jammers(sim, spec.stations, dyn.jammer);
  sim.set_router(scenario.tables.router());
  Rng traffic_rng = Rng(seed).split(2);
  for (const auto& inj : sim::poisson_traffic(
           spec.rate_pps, spec.duration_s, scenario.net.packet_bits,
           sim::uniform_pairs(scenario.gains.size()), traffic_rng))
    sim.inject(inj.time_s, inj.packet);
  const double total = spec.duration_s + spec.drain_s;
  std::optional<dynamics::DynamicsEngine> driver;
  if (dyn.enabled()) {
    dynamics::DynamicsConfig dc = dyn;
    if (dc.mobility_enabled() && dc.mobility_region_m <= 0.0)
      dc.mobility_region_m = spec.region_m;
    driver.emplace(dc, sim, placement, spec.stations, std::move(rejoin),
                   Rng(seed).split(3));
    driver->run(total);
  } else {
    sim.run_until(total);
  }
  TrialResult result = summarize(sim.metrics(), total);
  const auto qs = sim.queue_stats();
  result.events_processed = qs.events_processed;
  result.peak_queue_bytes = qs.peak_bytes;
  if (driver) {
    std::vector<double> samples = driver->recovery_samples();
    std::sort(samples.begin(), samples.end());
    result.median_recovery_s =
        samples.empty() ? 0.0 : samples[samples.size() / 2];
  }
  if (auditor) {
    auditor->finalize(total);
    auditor->cross_check(sim.metrics());
    result.audit_checks = auditor->checks_run();
    result.audit_violations = auditor->violation_count();
  }
  return result;
}

const sim::Metrics& run_scheme(Scenario& scenario, sim::Simulator& sim,
                               double packets_per_s, double duration_s,
                               std::uint64_t traffic_seed, double drain_s) {
  for (StationId s = 0; s < scenario.gains.size(); ++s)
    sim.set_mac(s, std::move(scenario.net.macs[s]));
  sim.set_router(scenario.tables.router());
  Rng rng(traffic_seed);
  for (const auto& inj : sim::poisson_traffic(
           packets_per_s, duration_s, scenario.net.packet_bits,
           sim::uniform_pairs(scenario.gains.size()), rng))
    sim.inject(inj.time_s, inj.packet);
  sim.run_until(duration_s + drain_s);
  return sim.metrics();
}

}  // namespace drn::runner
