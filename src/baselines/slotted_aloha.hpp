// Slotted ALOHA: transmissions start only on the boundaries of a globally
// synchronised slot grid. Note what the paper points out about such
// textbook schemes (Section 2): they presuppose exactly the system-wide
// synchronisation a large self-organising network cannot rely on. Here the
// simulator grants that synchronisation for free — another bias in the
// baseline's favour.
#pragma once

#include "baselines/contention_mac.hpp"

namespace drn::baselines {

class SlottedAloha final : public ContentionMac {
 public:
  /// @param slot_s the (perfectly shared) slot duration; packets should have
  ///               airtime <= slot_s.
  SlottedAloha(ContentionConfig config, double slot_s);

 private:
  void attempt(sim::MacContext& ctx) override;

  double slot_s_;
};

}  // namespace drn::baselines
