// Pure ALOHA (Abramson 1970), the asynchronous random-access scheme the
// paper's Section 2 traces the field back to: transmit the moment a packet
// is ready, regardless of anything else on the channel.
#pragma once

#include "baselines/contention_mac.hpp"

namespace drn::baselines {

class PureAloha final : public ContentionMac {
 public:
  explicit PureAloha(ContentionConfig config) : ContentionMac(config) {}

 private:
  void attempt(sim::MacContext& ctx) override { send_head(ctx, ctx.now()); }
};

}  // namespace drn::baselines
