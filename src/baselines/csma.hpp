// Non-persistent CSMA: sense the aggregate received power and transmit only
// if the channel looks idle, else back off and re-sense later.
//
// Under the paper's physical model carrier sense is doubly flawed in a large
// dense network: the "din" of distant transmitters keeps the sensed power
// permanently elevated (so thresholds must be well above the noise floor to
// make progress at all), and sensing at the SENDER says nothing about
// interference at the RECEIVER — the classic hidden/exposed terminal
// problems the SINR model makes explicit.
#pragma once

#include "baselines/contention_mac.hpp"

namespace drn::baselines {

class CsmaMac final : public ContentionMac {
 public:
  /// @param sense_threshold_w transmit only while the locally received
  ///        aggregate power is below this.
  CsmaMac(ContentionConfig config, double sense_threshold_w);

 private:
  void attempt(sim::MacContext& ctx) override;

  double sense_threshold_w_;
};

}  // namespace drn::baselines
