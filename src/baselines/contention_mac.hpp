// Shared machinery for the contention ("prior work") MACs the paper argues
// against: a single FIFO, immediate-or-deferred attempts, and idealised
// genie acknowledgements with truncated binary exponential backoff.
//
// The genie ack (the simulator tells the sender at transmission end whether
// the addressee decoded) costs the baselines no airtime and no delay, so
// every comparison in the benches is biased IN FAVOUR of the baselines; the
// paper's scheme still wins because it never loses packets to collisions in
// the first place.
#pragma once

#include <deque>
#include <utility>

#include "common/types.hpp"
#include "sim/mac.hpp"

namespace drn::baselines {

struct ContentionConfig {
  /// Transmit power (no power control in the classic models).
  double power_w = 1.0;
  /// Retransmissions before a packet is abandoned.
  int max_retries = 16;
  /// Mean of the first backoff draw; doubles per retry (capped at 2^10).
  double backoff_mean_s = 0.01;
  std::size_t max_queue = 4096;
};

class ContentionMac : public sim::MacProtocol {
 public:
  explicit ContentionMac(ContentionConfig config);

  void on_enqueue(sim::MacContext& ctx, const sim::Packet& pkt,
                  StationId next_hop) final;
  void on_timer(sim::MacContext& ctx, std::uint64_t cookie) final;
  void on_transmit_end(sim::MacContext& ctx, const sim::Packet& pkt,
                       StationId to, bool delivered) final;

  [[nodiscard]] std::size_t queued_packets() const { return queue_.size(); }

 protected:
  /// Called whenever the head-of-line packet should be (re)attempted. The
  /// subclass either calls send_head() or defer().
  virtual void attempt(sim::MacContext& ctx) = 0;

  /// Transmits the head-of-line packet starting at `start_s` (>= now).
  void send_head(sim::MacContext& ctx, double start_s);

  /// Re-runs attempt() after `delay_s`.
  void defer(sim::MacContext& ctx, double delay_s);

  [[nodiscard]] const ContentionConfig& config() const { return config_; }

 private:
  void next_packet_or_idle(sim::MacContext& ctx);

  ContentionConfig config_;
  std::deque<std::pair<sim::Packet, StationId>> queue_;
  int attempts_ = 0;
  bool idle_ = true;  // no transmission in flight and no timer armed
};

}  // namespace drn::baselines
