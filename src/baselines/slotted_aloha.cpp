#include "baselines/slotted_aloha.hpp"

#include <cmath>

#include "common/expects.hpp"

namespace drn::baselines {

SlottedAloha::SlottedAloha(ContentionConfig config, double slot_s)
    : ContentionMac(config), slot_s_(slot_s) {
  DRN_EXPECTS(slot_s > 0.0);
}

void SlottedAloha::attempt(sim::MacContext& ctx) {
  // Start at the next slot boundary (or immediately if we are on one).
  const double now = ctx.now();
  const double slots = std::ceil(now / slot_s_);
  double start = slots * slot_s_;
  if (start < now) start = now;  // guard against floating-point shortfall
  send_head(ctx, start);
}

}  // namespace drn::baselines
