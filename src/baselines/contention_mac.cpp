#include "baselines/contention_mac.hpp"

#include <algorithm>

#include "common/expects.hpp"

namespace drn::baselines {

ContentionMac::ContentionMac(ContentionConfig config) : config_(config) {
  DRN_EXPECTS(config.power_w > 0.0);
  DRN_EXPECTS(config.max_retries >= 0);
  DRN_EXPECTS(config.backoff_mean_s > 0.0);
  DRN_EXPECTS(config.max_queue > 0);
}

void ContentionMac::on_enqueue(sim::MacContext& ctx, const sim::Packet& pkt,
                               StationId next_hop) {
  if (queue_.size() >= config_.max_queue) {
    ctx.drop(pkt);
    return;
  }
  queue_.emplace_back(pkt, next_hop);
  if (idle_) {
    idle_ = false;
    attempt(ctx);
  }
}

void ContentionMac::on_timer(sim::MacContext& ctx, std::uint64_t cookie) {
  (void)cookie;
  attempt(ctx);
}

void ContentionMac::send_head(sim::MacContext& ctx, double start_s) {
  DRN_EXPECTS(!queue_.empty());
  const auto& [pkt, hop] = queue_.front();
  ctx.transmit(pkt, hop, config_.power_w, start_s);
}

void ContentionMac::defer(sim::MacContext& ctx, double delay_s) {
  DRN_EXPECTS(delay_s >= 0.0);
  ctx.set_timer(ctx.now() + delay_s, 0);
}

void ContentionMac::next_packet_or_idle(sim::MacContext& ctx) {
  attempts_ = 0;
  if (queue_.empty()) {
    idle_ = true;
  } else {
    attempt(ctx);
  }
}

void ContentionMac::on_transmit_end(sim::MacContext& ctx,
                                    const sim::Packet& pkt, StationId to,
                                    bool delivered) {
  (void)pkt;
  (void)to;
  DRN_EXPECTS(!queue_.empty());
  if (delivered) {
    queue_.pop_front();
    next_packet_or_idle(ctx);
    return;
  }
  ++attempts_;
  if (attempts_ > config_.max_retries) {
    ctx.drop(queue_.front().first);
    queue_.pop_front();
    next_packet_or_idle(ctx);
    return;
  }
  // Truncated binary exponential backoff around the configured mean.
  const double scale =
      static_cast<double>(1 << std::min(attempts_, 10));
  defer(ctx, ctx.rng().uniform(0.0, 2.0 * config_.backoff_mean_s * scale));
}

}  // namespace drn::baselines
