#include "baselines/csma.hpp"

#include "common/expects.hpp"

namespace drn::baselines {

CsmaMac::CsmaMac(ContentionConfig config, double sense_threshold_w)
    : ContentionMac(config), sense_threshold_w_(sense_threshold_w) {
  DRN_EXPECTS(sense_threshold_w > 0.0);
}

void CsmaMac::attempt(sim::MacContext& ctx) {
  if (ctx.received_power_w() < sense_threshold_w_) {
    send_head(ctx, ctx.now());
    return;
  }
  // Channel busy: non-persistent — re-sense after a random pause.
  defer(ctx, ctx.rng().uniform(0.0, config().backoff_mean_s));
}

}  // namespace drn::baselines
