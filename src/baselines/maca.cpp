#include "baselines/maca.hpp"

#include <algorithm>

#include "common/expects.hpp"

namespace drn::baselines {

namespace {
constexpr double kEpsS = 1e-9;
}

MacaMac::MacaMac(MacaConfig config) : config_(config) {
  DRN_EXPECTS(config.power_w > 0.0);
  DRN_EXPECTS(config.rts_bits > 0.0);
  DRN_EXPECTS(config.cts_bits > 0.0);
  DRN_EXPECTS(config.turnaround_s >= 0.0);
  DRN_EXPECTS(config.timeout_slack_s > 0.0);
  DRN_EXPECTS(config.data_rate_bps > 0.0);
  DRN_EXPECTS(config.max_retries >= 0);
  DRN_EXPECTS(config.backoff_mean_s > 0.0);
  DRN_EXPECTS(config.max_queue > 0);
}

void MacaMac::on_enqueue(sim::MacContext& ctx, const sim::Packet& pkt,
                         StationId next_hop) {
  if (queue_.size() >= config_.max_queue) {
    ctx.drop(pkt);
    return;
  }
  queue_.emplace_back(pkt, next_hop);
  try_head(ctx);
}

void MacaMac::try_head(sim::MacContext& ctx) {
  if (state_ != State::kIdle || queue_.empty()) return;
  const double ready = std::max(defer_until_s_, busy_until_s_);
  if (ctx.now() + kEpsS < ready) {
    if (!try_armed_) {
      try_armed_ = true;
      ctx.set_timer(ready + kEpsS, cookie(kTryTag));
    }
    return;
  }

  // Fire the RTS: addressed in the payload, broadcast on the air so hidden
  // stations can learn to defer.
  const auto& [pkt, next_hop] = queue_.front();
  sim::Packet rts;
  rts.kind = sim::PacketKind::kRts;
  rts.source = ctx.self();
  rts.destination = next_hop;
  rts.size_bits = config_.rts_bits;
  rts.nav_s = airtime(pkt.size_bits);  // tells the addressee the data length
  ctx.transmit(rts, kBroadcast, config_.power_w, ctx.now());
  busy_until_s_ = ctx.now() + airtime(config_.rts_bits);

  state_ = State::kWaitCts;
  data_peer_ = next_hop;
  ++generation_;
  const double timeout = busy_until_s_ + config_.turnaround_s +
                         airtime(config_.cts_bits) + config_.timeout_slack_s;
  ctx.set_timer(timeout, cookie(kCtsTimeoutTag));
}

void MacaMac::arm_retry(sim::MacContext& ctx) {
  ++attempts_;
  if (attempts_ > config_.max_retries) {
    give_up(ctx);
    return;
  }
  const double scale = static_cast<double>(1 << std::min(attempts_, 10));
  defer_until_s_ = std::max(
      defer_until_s_,
      ctx.now() + ctx.rng().uniform(0.0, 2.0 * config_.backoff_mean_s * scale));
  state_ = State::kIdle;
  try_head(ctx);
}

void MacaMac::give_up(sim::MacContext& ctx) {
  DRN_EXPECTS(!queue_.empty());
  ctx.drop(queue_.front().first);
  queue_.pop_front();
  attempts_ = 0;
  state_ = State::kIdle;
  try_head(ctx);
}

void MacaMac::on_timer(sim::MacContext& ctx, std::uint64_t raw_cookie) {
  const std::uint64_t tag = raw_cookie % 8;
  const std::uint64_t gen = raw_cookie / 8;

  if (tag == kTryTag) {
    try_armed_ = false;
    try_head(ctx);
    return;
  }
  if (gen != generation_) return;  // stale handshake step

  switch (tag) {
    case kCtsTimeoutTag:
      if (state_ == State::kWaitCts) arm_retry(ctx);
      break;
    case kSendCtsTag: {
      // Reply CTS if the radio is free (if not, the initiator times out).
      if (ctx.transmitting() || ctx.now() + kEpsS < busy_until_s_) break;
      sim::Packet cts;
      cts.kind = sim::PacketKind::kCts;
      cts.source = ctx.self();
      cts.destination = cts_peer_;
      cts.size_bits = config_.cts_bits;
      cts.nav_s = config_.turnaround_s + cts_data_nav_s_;
      ctx.transmit(cts, kBroadcast, config_.power_w, ctx.now());
      busy_until_s_ = ctx.now() + airtime(config_.cts_bits);
      break;
    }
    case kSendDataTag: {
      if (state_ != State::kWaitCts || queue_.empty()) break;
      const auto& [pkt, next_hop] = queue_.front();
      const double start = std::max(ctx.now(), busy_until_s_);
      ctx.transmit(pkt, next_hop, config_.power_w, start);
      busy_until_s_ = start + airtime(pkt.size_bits);
      state_ = State::kSendingData;
      break;
    }
    default:
      break;
  }
}

void MacaMac::on_broadcast_received(sim::MacContext& ctx,
                                    const sim::Packet& pkt, StationId from,
                                    double /*signal_w*/) {
  switch (pkt.kind) {
    case sim::PacketKind::kRts:
      if (pkt.destination == ctx.self()) {
        // Someone wants to talk to us: answer after the turnaround, if we
        // are not in the middle of our own exchange.
        if (state_ != State::kIdle) break;
        cts_peer_ = from;
        cts_data_nav_s_ = pkt.nav_s;
        ++generation_;
        ctx.set_timer(ctx.now() + config_.turnaround_s, cookie(kSendCtsTag));
      } else {
        // Defer long enough for the (unheard) CTS to come back.
        defer_until_s_ =
            std::max(defer_until_s_,
                     ctx.now() + config_.turnaround_s +
                         airtime(config_.cts_bits) + config_.timeout_slack_s);
      }
      break;
    case sim::PacketKind::kCts:
      if (pkt.destination == ctx.self() && state_ == State::kWaitCts &&
          from == data_peer_) {
        ++generation_;  // invalidates the CTS timeout
        ctx.set_timer(ctx.now() + config_.turnaround_s, cookie(kSendDataTag));
      } else if (pkt.destination != ctx.self()) {
        // Keep quiet while the data frame we may not hear is in the air.
        defer_until_s_ = std::max(defer_until_s_, ctx.now() + pkt.nav_s);
      }
      break;
    case sim::PacketKind::kData:
      break;  // data is never broadcast
  }
}

void MacaMac::on_transmit_end(sim::MacContext& ctx, const sim::Packet& pkt,
                              StationId /*to*/, bool /*delivered*/) {
  if (pkt.kind != sim::PacketKind::kData) return;
  // Original MACA has no link-layer ACK: the exchange ends with the data
  // frame, delivered or not.
  DRN_EXPECTS(!queue_.empty());
  queue_.pop_front();
  attempts_ = 0;
  state_ = State::kIdle;
  try_head(ctx);
}

}  // namespace drn::baselines
