#include "baselines/aloha.hpp"

// PureAloha is fully defined in the header; this translation unit anchors it
// in the baselines library.
