// MACA (Karn 1990) — the RTS/CTS handshake the paper's Section 2 singles
// out as "the most notable recent progress" in the all-or-nothing tradition
// ("the MACA-MACAW-FAMA line of work begun by Karn").
//
// Behaviour implemented (original MACA, no link-layer ACK):
//   * a station with a packet sends a short RTS naming the addressee and a
//     NAV covering the CTS;
//   * the addressee answers CTS (NAV covering the data frame);
//   * anyone overhearing an RTS or CTS addressed elsewhere defers for the
//     NAV (this is how hidden terminals learn to keep quiet);
//   * on receiving CTS the initiator sends the data frame;
//   * no CTS within the timeout -> binary exponential backoff and a new RTS
//     (up to max_retries); a lost DATA frame is simply lost (recovery was
//     left to higher layers until MACAW added ACKs).
//
// All control traffic is real airtime under the same SINR physics — RTS
// packets collide, CTS packets interfere — so the comparison against the
// scheduled scheme charges MACA its true overhead, with no genie anywhere.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>

#include "common/types.hpp"
#include "sim/mac.hpp"

namespace drn::baselines {

struct MacaConfig {
  double power_w = 1.0;
  /// Control frame sizes, bits (at the design rate).
  double rts_bits = 160.0;
  double cts_bits = 160.0;
  /// Radio turnaround between handshake steps, seconds.
  double turnaround_s = 1.0e-5;
  /// CTS wait beyond the expected handshake time before backing off.
  double timeout_slack_s = 5.0e-4;
  /// The design data rate (airtime arithmetic for NAVs and timeouts).
  double data_rate_bps = 1.0e6;
  int max_retries = 8;
  double backoff_mean_s = 0.01;
  std::size_t max_queue = 4096;
};

class MacaMac final : public sim::MacProtocol {
 public:
  explicit MacaMac(MacaConfig config);

  void on_enqueue(sim::MacContext& ctx, const sim::Packet& pkt,
                  StationId next_hop) override;
  void on_timer(sim::MacContext& ctx, std::uint64_t cookie) override;
  void on_transmit_end(sim::MacContext& ctx, const sim::Packet& pkt,
                       StationId to, bool delivered) override;
  void on_broadcast_received(sim::MacContext& ctx, const sim::Packet& pkt,
                             StationId from, double signal_w) override;

  [[nodiscard]] std::size_t queued_packets() const { return queue_.size(); }

 private:
  enum class State : std::uint8_t {
    kIdle,        // nothing in flight
    kWaitCts,     // RTS sent, waiting for the addressee's CTS
    kSendingData, // data frame on the air
  };

  // Timer cookies (generation-tagged to ignore stale ones).
  [[nodiscard]] std::uint64_t cookie(std::uint64_t tag) const {
    return generation_ * 8 + tag;
  }
  static constexpr std::uint64_t kTryTag = 0;      // attempt the head packet
  static constexpr std::uint64_t kCtsTimeoutTag = 1;
  static constexpr std::uint64_t kSendCtsTag = 2;
  static constexpr std::uint64_t kSendDataTag = 3;

  void try_head(sim::MacContext& ctx);
  void arm_retry(sim::MacContext& ctx);
  void give_up(sim::MacContext& ctx);

  [[nodiscard]] double airtime(double bits) const {
    return bits / config_.data_rate_bps;
  }

  MacaConfig config_;
  std::deque<std::pair<sim::Packet, StationId>> queue_;
  State state_ = State::kIdle;
  std::uint64_t generation_ = 1;
  int attempts_ = 0;
  double defer_until_s_ = 0.0;
  double busy_until_s_ = 0.0;  // our own transmitter's schedule
  bool try_armed_ = false;     // a kTryTag timer is pending
  // Pending CTS reply (we are the addressee of someone's RTS).
  StationId cts_peer_ = kNoStation;
  double cts_data_nav_s_ = 0.0;
  // Peer whose CTS we are waiting for / data addressee.
  StationId data_peer_ = kNoStation;
};

}  // namespace drn::baselines
