#include "analysis/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/expects.hpp"

namespace drn::analysis {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DRN_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DRN_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c)
    rule += "  " + std::string(widths[c], '-');
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::num(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string Table::num(std::uint64_t value) { return std::to_string(value); }

}  // namespace drn::analysis
