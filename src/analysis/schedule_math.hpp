// Closed-form performance of the pseudo-random schedules (Section 7.2).
//
// With receive duty cycle p and independent unaligned schedules, a slot of
// the sender is usable toward a given neighbour with probability
// q = (1-p) * p (sender may transmit, neighbour committed to listen), the
// wait for an opportunity is geometric with mean 1/q (4.76 slots at p = 0.3),
// and quarter-slot packets capture about 75% of the raw overlap time (15% of
// all time per neighbour). These formulas are what the simulation benches
// (T3) are checked against.
#pragma once

#include "common/units.hpp"

namespace drn::analysis {

/// q = p(1-p): probability a given sender slot can carry a packet to a given
/// neighbour (sender-transmit AND neighbour-receive).
[[nodiscard]] double access_probability(double receive_fraction);

/// Mean slots until an opportunity: 1 / (p(1-p)). 4.76 at p = 0.3.
[[nodiscard]] units::Slots expected_wait(double receive_fraction);

/// P(wait == k slots) for the geometric access process, k >= 0.
[[nodiscard]] double wait_pmf(double receive_fraction, unsigned k);

/// The p maximising p(1-p) is 0.5 for a single pair; the paper's system-wide
/// sweep (thesis) lands near 0.3 because the sender's OTHER neighbours also
/// consume its transmit slots — exposed for documentation and the T3 bench.
[[nodiscard]] double pairwise_optimal_receive_fraction();

/// Expected fraction of the raw overlap time that fixed-size packets of
/// `packet_fraction` of a slot can actually occupy, when the overlap of an
/// unaligned (transmit, receive) slot pair is uniform on [0, T]:
/// E[floor(U/f)]*f / E[U] with U ~ Uniform(0,1). 0.75 for f = 1/4.
[[nodiscard]] double packing_efficiency(double packet_fraction);

/// Fraction of ALL time usable toward one neighbour:
/// p(1-p) * packing_efficiency. ~0.21 * 0.75 ~ 0.157 at p = 0.3, f = 1/4
/// (the paper's "approximately 15% of all time").
[[nodiscard]] double usable_time_fraction(double receive_fraction,
                                          double packet_fraction);

}  // namespace drn::analysis
