// System-design arithmetic: the Section 6 processing-gain budget and the
// conclusion's metro-scale performance projection.
#pragma once

#include <cstddef>

namespace drn::analysis {

/// The Section 6 budget: the SNR of a nearest-neighbour link in an M-station
/// system at duty cycle eta, plus the detection margin above the Shannon
/// bound (paper: 5 dB) and the range margin for neighbours out to twice the
/// characteristic length (free space: 6 dB), determine the spread-spectrum
/// processing gain the radios need. The paper's answer: 20-25 dB.
struct ProcessingGainBudget {
  double snr_db = 0.0;            // nearest-neighbour SNR, Eq. 15
  double detection_margin_db = 0.0;
  double range_margin_db = 0.0;
  double required_gain_db = 0.0;  // -snr + margins
};

[[nodiscard]] ProcessingGainBudget processing_gain_budget(
    std::size_t stations, double eta, double detection_margin_db = 5.0,
    double range_margin_db = 6.0);

/// The conclusion's what-if calculator: a metro-scale system of `stations`
/// at duty cycle `eta` over spread bandwidth `bandwidth_hz`.
struct MetroProjection {
  double snr = 0.0;                  // nearest-neighbour SNR (linear)
  double required_gain_db = 0.0;     // processing gain to budget
  double raw_rate_bps = 0.0;         // W / processing gain
  double shannon_rate_bps = 0.0;     // W log2(1+snr): the information bound
  double per_neighbor_rate_bps = 0.0;  // raw * usable_time_fraction
};

[[nodiscard]] MetroProjection metro_projection(std::size_t stations, double eta,
                                               double bandwidth_hz,
                                               double receive_fraction = 0.3,
                                               double packet_fraction = 0.25,
                                               double detection_margin_db = 5.0,
                                               double range_margin_db = 6.0);

}  // namespace drn::analysis
