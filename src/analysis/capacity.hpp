// System-design arithmetic: the Section 6 processing-gain budget and the
// conclusion's metro-scale performance projection.
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace drn::analysis {

/// The Section 6 budget: the SNR of a nearest-neighbour link in an M-station
/// system at duty cycle eta, plus the detection margin above the Shannon
/// bound (paper: 5 dB) and the range margin for neighbours out to twice the
/// characteristic length (free space: 6 dB), determine the spread-spectrum
/// processing gain the radios need. The paper's answer: 20-25 dB.
struct ProcessingGainBudget {
  units::Decibels snr;               // nearest-neighbour SNR, Eq. 15
  units::Decibels detection_margin;
  units::Decibels range_margin;
  units::Decibels required_gain;     // -snr + margins
};

[[nodiscard]] ProcessingGainBudget processing_gain_budget(
    std::size_t stations, double eta,
    units::Decibels detection_margin = units::Decibels{5.0},
    units::Decibels range_margin = units::Decibels{6.0});

/// The conclusion's what-if calculator: a metro-scale system of `stations`
/// at duty cycle `eta` over spread bandwidth `bandwidth`.
struct MetroProjection {
  units::LinearGain snr;                  // nearest-neighbour SNR
  units::Decibels required_gain;          // processing gain to budget
  units::BitsPerSecond raw_rate;          // W / processing gain
  units::BitsPerSecond shannon_rate;      // W log2(1+snr): information bound
  units::BitsPerSecond per_neighbor_rate; // raw * usable_time_fraction
};

[[nodiscard]] MetroProjection metro_projection(
    std::size_t stations, double eta, units::Hertz bandwidth,
    double receive_fraction = 0.3, double packet_fraction = 0.25,
    units::Decibels detection_margin = units::Decibels{5.0},
    units::Decibels range_margin = units::Decibels{6.0});

}  // namespace drn::analysis
