#include "analysis/delay_model.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/schedule_math.hpp"
#include "common/expects.hpp"

namespace drn::analysis {

std::vector<double> geometric_wait_pmf(double receive_fraction,
                                       std::size_t bins) {
  DRN_EXPECTS(bins >= 1);
  const double q = access_probability(receive_fraction);
  DRN_EXPECTS(q > 0.0);
  std::vector<double> pmf(bins, 0.0);
  double tail = 1.0;
  for (std::size_t k = 0; k + 1 < bins; ++k) {
    pmf[k] = q * std::pow(1.0 - q, static_cast<double>(k));
    tail -= pmf[k];
  }
  pmf[bins - 1] = std::max(0.0, tail);
  return pmf;
}

std::vector<double> binned_wait_fractions(std::span<const double> wait_slots,
                                          std::size_t bins) {
  DRN_EXPECTS(bins >= 1);
  DRN_EXPECTS(!wait_slots.empty());
  std::vector<double> counts(bins, 0.0);
  for (double w : wait_slots) {
    DRN_EXPECTS(w >= 0.0);
    const auto bin = std::min<std::size_t>(
        bins - 1, static_cast<std::size_t>(std::floor(w)));
    counts[bin] += 1.0;
  }
  for (double& c : counts) c /= static_cast<double>(wait_slots.size());
  return counts;
}

double total_variation(std::span<const double> a, std::span<const double> b) {
  DRN_EXPECTS(a.size() == b.size());
  DRN_EXPECTS(!a.empty());
  double tv = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) tv += std::abs(a[i] - b[i]);
  return tv / 2.0;
}

double binned_mean(std::span<const double> fractions) {
  DRN_EXPECTS(!fractions.empty());
  double mean = 0.0;
  for (std::size_t i = 0; i < fractions.size(); ++i)
    mean += (static_cast<double>(i) + 0.5) * fractions[i];
  return mean;
}

}  // namespace drn::analysis
