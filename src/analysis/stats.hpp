// Offline statistics helpers for benches and tests: histograms and
// percentiles over collected samples. Streaming moments live in
// common/running_stats.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace drn::analysis {

/// Fixed-range, equal-width histogram. Out-of-range samples clamp to the
/// edge bins so totals always match the number of adds.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bin_center(std::size_t bin) const;
  [[nodiscard]] double bin_width() const { return width_; }

  /// Fraction of all samples in `bin` (0 if empty histogram).
  [[nodiscard]] double fraction(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// The q-th percentile (q in [0, 100]) by linear interpolation between order
/// statistics. Copies and sorts; requires a non-empty sample.
[[nodiscard]] double percentile(std::span<const double> samples, double q);

/// Arithmetic mean of a non-empty sample.
[[nodiscard]] double mean(std::span<const double> samples);

}  // namespace drn::analysis
