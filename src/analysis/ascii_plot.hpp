// Minimal ASCII line plots for the bench binaries, so reproduced FIGURES
// render as figures (axes, ticks, one glyph per series) rather than only as
// tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace drn::analysis {

/// One plotted series: (x, y) points and the glyph that draws them.
struct Series {
  std::string label;
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;
};

class AsciiPlot {
 public:
  /// @param width,height  interior plot size in characters.
  AsciiPlot(std::size_t width, std::size_t height);

  /// Adds a series; x and y must be the same (non-zero) length.
  void add(Series series);

  /// Optional axis labels.
  void x_label(std::string label) { x_label_ = std::move(label); }
  void y_label(std::string label) { y_label_ = std::move(label); }

  /// Renders the plot (auto-scaled to the data's bounding box) with y ticks
  /// on the left, x ticks below, and a legend line per series.
  void print(std::ostream& os) const;

 private:
  std::size_t width_;
  std::size_t height_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
};

}  // namespace drn::analysis
