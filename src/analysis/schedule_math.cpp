#include "analysis/schedule_math.hpp"

#include <cmath>

#include "common/expects.hpp"

namespace drn::analysis {

double access_probability(double receive_fraction) {
  DRN_EXPECTS(receive_fraction >= 0.0 && receive_fraction <= 1.0);
  return receive_fraction * (1.0 - receive_fraction);
}

units::Slots expected_wait(double receive_fraction) {
  const double q = access_probability(receive_fraction);
  DRN_EXPECTS(q > 0.0);
  return units::Slots{1.0 / q};
}

double wait_pmf(double receive_fraction, unsigned k) {
  const double q = access_probability(receive_fraction);
  DRN_EXPECTS(q > 0.0);
  return q * std::pow(1.0 - q, static_cast<double>(k));
}

double pairwise_optimal_receive_fraction() { return 0.5; }

double packing_efficiency(double packet_fraction) {
  DRN_EXPECTS(packet_fraction > 0.0 && packet_fraction <= 1.0);
  const double f = packet_fraction;
  // E[floor(U/f)] = sum_{k>=1} P(U >= k f) = sum_{k=1..m} (1 - k f),
  // with m = floor(1/f) (largest whole packet count that can fit).
  const double m = std::floor(1.0 / f);
  const double expected_whole_packets = m - f * m * (m + 1.0) / 2.0;
  // E[U] = 1/2 of a slot of usable overlap on average.
  return expected_whole_packets * f / 0.5;
}

double usable_time_fraction(double receive_fraction, double packet_fraction) {
  return access_probability(receive_fraction) *
         packing_efficiency(packet_fraction);
}

}  // namespace drn::analysis
