#include "analysis/capacity.hpp"

#include "analysis/schedule_math.hpp"
#include "common/expects.hpp"
#include "radio/noise_growth.hpp"
#include "radio/reception.hpp"
#include "radio/units.hpp"

namespace drn::analysis {

ProcessingGainBudget processing_gain_budget(std::size_t stations, double eta,
                                            units::Decibels detection_margin,
                                            units::Decibels range_margin) {
  DRN_EXPECTS(detection_margin.value() >= 0.0);
  DRN_EXPECTS(range_margin.value() >= 0.0);
  ProcessingGainBudget b;
  b.snr = radio::nearest_neighbor_snr_db(stations, eta);
  b.detection_margin = detection_margin;
  b.range_margin = range_margin;
  b.required_gain = -b.snr + detection_margin + range_margin;
  return b;
}

MetroProjection metro_projection(std::size_t stations, double eta,
                                 units::Hertz bandwidth,
                                 double receive_fraction,
                                 double packet_fraction,
                                 units::Decibels detection_margin,
                                 units::Decibels range_margin) {
  DRN_EXPECTS(bandwidth.value() > 0.0);
  const auto budget = processing_gain_budget(stations, eta, detection_margin,
                                             range_margin);
  MetroProjection p;
  p.snr = radio::nearest_neighbor_snr(stations, eta);
  p.required_gain = budget.required_gain;
  p.raw_rate = bandwidth / budget.required_gain.to_linear();
  p.shannon_rate = radio::shannon_capacity(bandwidth, p.snr);
  p.per_neighbor_rate =
      p.raw_rate * usable_time_fraction(receive_fraction, packet_fraction);
  return p;
}

}  // namespace drn::analysis
