#include "analysis/capacity.hpp"

#include "analysis/schedule_math.hpp"
#include "common/expects.hpp"
#include "radio/noise_growth.hpp"
#include "radio/reception.hpp"
#include "radio/units.hpp"

namespace drn::analysis {

ProcessingGainBudget processing_gain_budget(std::size_t stations, double eta,
                                            double detection_margin_db,
                                            double range_margin_db) {
  DRN_EXPECTS(detection_margin_db >= 0.0);
  DRN_EXPECTS(range_margin_db >= 0.0);
  ProcessingGainBudget b;
  b.snr_db = radio::nearest_neighbor_snr_db(stations, eta);
  b.detection_margin_db = detection_margin_db;
  b.range_margin_db = range_margin_db;
  b.required_gain_db = -b.snr_db + detection_margin_db + range_margin_db;
  return b;
}

MetroProjection metro_projection(std::size_t stations, double eta,
                                 double bandwidth_hz, double receive_fraction,
                                 double packet_fraction,
                                 double detection_margin_db,
                                 double range_margin_db) {
  DRN_EXPECTS(bandwidth_hz > 0.0);
  const auto budget = processing_gain_budget(stations, eta, detection_margin_db,
                                             range_margin_db);
  MetroProjection p;
  p.snr = radio::nearest_neighbor_snr(stations, eta);
  p.required_gain_db = budget.required_gain_db;
  p.raw_rate_bps = bandwidth_hz / radio::from_db(budget.required_gain_db);
  p.shannon_rate_bps = radio::shannon_capacity(bandwidth_hz, p.snr);
  p.per_neighbor_rate_bps =
      p.raw_rate_bps * usable_time_fraction(receive_fraction, packet_fraction);
  return p;
}

}  // namespace drn::analysis
