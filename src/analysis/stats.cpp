#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"

namespace drn::analysis {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  DRN_EXPECTS(hi > lo);
  DRN_EXPECTS(bins > 0);
}

void Histogram::add(double x) {
  const double raw = (x - lo_) / width_;
  std::size_t bin = 0;
  if (raw > 0.0) {
    bin = std::min(counts_.size() - 1,
                   static_cast<std::size_t>(std::floor(raw)));
  }
  ++counts_[bin];
  ++total_;
}

std::uint64_t Histogram::count(std::size_t bin) const {
  DRN_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  DRN_EXPECTS(bin < counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double percentile(std::span<const double> samples, double q) {
  DRN_EXPECTS(!samples.empty());
  DRN_EXPECTS(q >= 0.0 && q <= 100.0);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto below = static_cast<std::size_t>(std::floor(rank));
  if (below + 1 >= sorted.size()) return sorted.back();
  const double t = rank - static_cast<double>(below);
  return sorted[below] * (1.0 - t) + sorted[below + 1] * t;
}

double mean(std::span<const double> samples) {
  DRN_EXPECTS(!samples.empty());
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

}  // namespace drn::analysis
