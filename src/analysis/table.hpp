// Fixed-width text tables shared by the bench binaries, so every reproduced
// figure/table prints in a uniform, diffable format.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace drn::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Prints with columns padded to their widest cell.
  void print(std::ostream& os) const;

  /// Formats a double with `precision` significant digits after the point.
  [[nodiscard]] static std::string num(double value, int precision = 3);

  /// Formats an integer count.
  [[nodiscard]] static std::string num(std::uint64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace drn::analysis
