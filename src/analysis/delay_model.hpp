// The Section 7.2 delay model and tools to test measured delays against it:
// "The additional delays due to the scheduling scheme are fairly well
// modeled by a Bernoulli process with the Bernoulli trial probability of
// success of p(1-p)" — i.e. the per-hop access wait is geometric. These
// helpers bin measured waits, produce the model PMF, and compute a
// chi-square-style discrepancy the tests and the T3 bench can threshold.
#pragma once

#include <span>
#include <vector>

namespace drn::analysis {

/// Geometric model PMF over wait bins 0..bins-1 (in slots), success
/// probability q = p(1-p): P(k) = q (1-q)^k, with the tail mass folded into
/// the last bin so the vector sums to 1.
[[nodiscard]] std::vector<double> geometric_wait_pmf(double receive_fraction,
                                                     std::size_t bins);

/// Bins wait samples (in slots, fractional) into unit-slot bins 0..bins-1
/// (overflow folds into the last bin) and normalises to fractions.
[[nodiscard]] std::vector<double> binned_wait_fractions(
    std::span<const double> wait_slots, std::size_t bins);

/// Total-variation distance between two distributions over the same bins:
/// 0 = identical, 1 = disjoint. The tests require the measured wait
/// distribution to be within a small TV distance of the geometric model.
[[nodiscard]] double total_variation(std::span<const double> a,
                                     std::span<const double> b);

/// Mean of binned samples interpreted at bin centres (diagnostic).
[[nodiscard]] double binned_mean(std::span<const double> fractions);

}  // namespace drn::analysis
