#include "analysis/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/expects.hpp"

namespace drn::analysis {

AsciiPlot::AsciiPlot(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  DRN_EXPECTS(width >= 10);
  DRN_EXPECTS(height >= 4);
}

void AsciiPlot::add(Series series) {
  DRN_EXPECTS(!series.x.empty());
  DRN_EXPECTS(series.x.size() == series.y.size());
  series_.push_back(std::move(series));
}

void AsciiPlot::print(std::ostream& os) const {
  DRN_EXPECTS(!series_.empty());

  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = x_min;
  double y_max = -x_min;
  for (const auto& s : series_) {
    for (double v : s.x) {
      x_min = std::min(x_min, v);
      x_max = std::max(x_max, v);
    }
    for (double v : s.y) {
      y_min = std::min(y_min, v);
      y_max = std::max(y_max, v);
    }
  }
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  const auto col_of = [&](double x) {
    const double t = (x - x_min) / (x_max - x_min);
    return std::min(width_ - 1,
                    static_cast<std::size_t>(t * static_cast<double>(width_ - 1) + 0.5));
  };
  const auto row_of = [&](double y) {
    const double t = (y - y_min) / (y_max - y_min);
    const auto from_bottom =
        std::min(height_ - 1,
                 static_cast<std::size_t>(t * static_cast<double>(height_ - 1) + 0.5));
    return height_ - 1 - from_bottom;
  };
  for (const auto& s : series_)
    for (std::size_t i = 0; i < s.x.size(); ++i)
      grid[row_of(s.y[i])][col_of(s.x[i])] = s.glyph;

  const auto tick = [](double v) {
    std::ostringstream ss;
    ss << std::setw(8) << std::setprecision(3) << v;
    return ss.str();
  };

  if (!y_label_.empty()) os << "  " << y_label_ << '\n';
  for (std::size_t r = 0; r < height_; ++r) {
    if (r == 0) {
      os << tick(y_max) << " |";
    } else if (r == height_ - 1) {
      os << tick(y_min) << " |";
    } else {
      os << std::string(8, ' ') << " |";
    }
    os << grid[r] << '\n';
  }
  os << std::string(9, ' ') << '+' << std::string(width_, '-') << '\n';
  os << std::string(10, ' ') << tick(x_min)
     << std::string(width_ > 24 ? width_ - 24 : 1, ' ') << tick(x_max) << '\n';
  if (!x_label_.empty())
    os << std::string(10 + width_ / 2 > x_label_.size() / 2
                          ? 10 + width_ / 2 - x_label_.size() / 2
                          : 0,
                      ' ')
       << x_label_ << '\n';
  for (const auto& s : series_)
    os << "    " << s.glyph << " = " << s.label << '\n';
}

}  // namespace drn::analysis
