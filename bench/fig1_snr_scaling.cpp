// Figure 1: decline of the signal-to-noise ratio as the number of stations M
// grows, one curve per duty cycle eta in {0.05, 0.1, 0.2, 0.5, 1} (Eq. 15),
// plus a Monte-Carlo validation column for laptop-feasible M under the
// simulator's 1/r^2 physics.
#include <cmath>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "analysis/ascii_plot.hpp"
#include "analysis/table.hpp"
#include "radio/noise_growth.hpp"
#include "radio/units.hpp"
#include "runner/summary.hpp"
#include "runner/thread_pool.hpp"

namespace {

using drn::analysis::Table;

void analytic_curves() {
  std::cout << "Figure 1 — SNR (dB) of a nearest-neighbour transmission vs "
               "log10(M)\n"
               "Each column is one duty-cycle curve (Eq. 15: SNR = 1/(eta ln "
               "M)).\n\n";
  const double etas[] = {0.05, 0.1, 0.2, 0.5, 1.0};
  Table t({"log10(M)", "eta=0.05", "eta=0.1", "eta=0.2", "eta=0.5", "eta=1"});
  for (int exp10 = 2; exp10 <= 12; ++exp10) {
    const auto m = static_cast<std::size_t>(std::pow(10.0, exp10));
    std::vector<std::string> row{Table::num(std::uint64_t(exp10))};
    for (double eta : etas)
      row.push_back(
          Table::num(drn::radio::nearest_neighbor_snr_db(m, eta).value(), 2));
    t.add_row(row);
  }
  t.print(std::cout);

  std::cout << "\nAs a figure (one glyph per eta curve):\n\n";
  drn::analysis::AsciiPlot plot(70, 18);
  plot.y_label("SNR (dB)");
  plot.x_label("log10(number of stations)");
  const char glyphs[] = {'a', 'b', 'c', 'd', 'e'};
  for (std::size_t i = 0; i < 5; ++i) {
    drn::analysis::Series s;
    s.label = "eta=" + Table::num(etas[i], 2);
    s.glyph = glyphs[i];
    for (int exp10 = 2; exp10 <= 12; ++exp10) {
      s.x.push_back(exp10);
      s.y.push_back(
          drn::radio::nearest_neighbor_snr_db(
              static_cast<std::size_t>(std::pow(10.0, exp10)), etas[i])
              .value());
    }
    plot.add(std::move(s));
  }
  plot.print(std::cout);

  std::cout << "\nPaper check: the curves decline only logarithmically; at "
               "eta=1 the SNR is "
            << Table::num(
                   drn::radio::nearest_neighbor_snr_db(100000000, 1.0).value(),
                   1)
            << " dB even at 10^8 stations.\n\n";
}

void monte_carlo_validation() {
  std::cout << "Monte-Carlo validation (random uniform-disc placements, "
               "random active sets, 1/r^2 loss; trials fanned across the "
               "runner's thread pool, per-trial RNG split from the trial "
               "index so the table is thread-count-invariant):\n\n";
  constexpr std::uint64_t kMasterSeed = 20240706;
  Table t({"M", "eta", "analytic dB", "measured dB", "95% CI", "trials"});
  drn::runner::ThreadPool pool(drn::runner::ThreadPool::hardware_jobs());
  std::uint64_t combo = 0;
  for (std::size_t m : {std::size_t{500}, std::size_t{5000},
                        std::size_t{20000}}) {
    for (double eta : {0.2, 0.5, 1.0}) {
      const std::size_t trials = m > 10000 ? 20 : 50;
      const std::uint64_t base_tag = combo++ << 16;
      // Each trial writes its own slot; the reduction below runs in index
      // order, so the table is bit-identical for any worker count.
      std::vector<double> samples(trials,
                                  -std::numeric_limits<double>::infinity());
      drn::runner::parallel_for(pool, trials, [&](std::size_t i) {
        drn::Rng rng = drn::Rng(kMasterSeed).split(base_tag | i);
        const auto s =
            drn::radio::sample_nearest_neighbor_snr(m, drn::radio::Meters{100.0},
                                                    eta, rng);
        if (s.snr.value() > 0.0 && std::isfinite(s.snr.value()))
          samples[i] = drn::radio::to_db(s.snr.value());
      });
      drn::runner::SummaryStats db;
      for (double snr_db : samples)
        if (std::isfinite(snr_db)) db.add(snr_db);
      t.add_row({Table::num(std::uint64_t(m)), Table::num(eta, 2),
                 Table::num(drn::radio::nearest_neighbor_snr_db(m, eta).value(), 2),
                 Table::num(db.mean(), 2),
                 "+-" + Table::num(db.ci95_half_width(), 2),
                 Table::num(std::uint64_t(trials))});
    }
  }
  t.print(std::cout);
  std::cout << "\nThe measured means track Eq. 15 (the closed form idealises "
               "the nearest-neighbour distance, so a ~2 dB offset is "
               "expected).\n";
}

void dual_slope_note() {
  std::cout << "\nObstructed (dual-slope) propagation removes the divergence "
               "entirely:\n\n";
  Table t({"model", "total interference (rel.)", "outer bound"});
  const double sigma = 0.01;
  const double r0 = drn::radio::characteristic_length(sigma).value();
  t.add_row({"free space, disc R = 100 R0",
             Table::num(
                 drn::radio::annulus_interference(
                     sigma, 1.0, drn::radio::Meters{r0},
                     drn::radio::Meters{100.0 * r0})
                     .value(),
                 2),
             "radio horizon (paper)"});
  t.add_row({"free space, disc R = 10000 R0",
             Table::num(
                 drn::radio::annulus_interference(
                     sigma, 1.0, drn::radio::Meters{r0},
                     drn::radio::Meters{10000.0 * r0})
                     .value(),
                 2),
             "still growing (ln R)"});
  t.add_row({"dual-slope (bp = 10 R0, alpha 4)",
             Table::num(
                 drn::radio::dual_slope_total_interference(
                     sigma, 1.0, drn::radio::Meters{r0},
                     drn::radio::Meters{10.0 * r0}, 4.0)
                     .value(),
                 2),
             "INFINITY - converges"});
  t.print(std::cout);
  std::cout << "\n'The slightest bit of atmospheric attenuation ... would "
               "make the integral converge' (Section 4) — with two-ray "
               "1/r^4 beyond a breakpoint, no horizon assumption is needed "
               "at all.\n";
}

}  // namespace

int main() {
  analytic_curves();
  monte_carlo_validation();
  dual_slope_note();
  return 0;
}
