// The conclusion's projection: "with a modest fraction of the radio
// spectrum, pessimistic assumptions about propagation resulting in
// maximum-possible self-interference, and an optimistic view of future
// signal processing capabilities ... a self-organizing packet radio network
// may scale to millions of stations within a metro area with raw per-station
// rates in the hundreds of megabits per second."
#include <cmath>
#include <iostream>

#include "analysis/capacity.hpp"
#include "analysis/table.hpp"

int main() {
  using drn::analysis::Table;
  using drn::analysis::metro_projection;

  std::cout << "Conclusion — metro-scale performance projection\n"
               "(raw rate = spread bandwidth / budgeted processing gain; "
               "per-neighbour rate applies the Section 7.2 ~15% usable-time "
               "factor at p=0.3, f=1/4)\n\n";

  Table t({"stations", "eta", "bandwidth", "SNR dB", "proc gain dB",
           "raw rate Mb/s", "per-neighbour Mb/s"});
  const struct {
    std::size_t m;
    double eta;
    double bw;
    const char* bw_label;
  } cases[] = {
      {1000000, 1.0, 0.5e9, "0.5 GHz"},
      {1000000, 0.25, 0.5e9, "0.5 GHz"},
      {1000000, 0.25, 2.5e9, "2.5 GHz"},
      {1000000, 0.25, 1.0e10, "10 GHz"},
      {10000000, 0.25, 1.0e10, "10 GHz"},
      {100000000, 0.25, 1.0e10, "10 GHz"},
      {1000000000, 0.25, 1.0e10, "10 GHz"},
  };
  for (const auto& c : cases) {
    const auto p = metro_projection(c.m, c.eta, drn::units::Hertz{c.bw});
    t.add_row({Table::num(std::uint64_t(c.m)), Table::num(c.eta, 2),
               c.bw_label,
               Table::num(p.snr.to_db().value(), 1),
               Table::num(p.required_gain.value(), 1),
               Table::num(p.raw_rate.value() / 1.0e6, 1),
               Table::num(p.per_neighbor_rate.value() / 1.0e6, 2)});
  }
  t.print(std::cout);
  std::cout
      << "\nPaper check: with ~10 GHz of spread bandwidth ('a modest "
         "fraction of the radio spectrum' at tens-of-GHz carriers) and the "
         "eta=0.25 budget, millions of stations sustain raw per-station "
         "rates above 100 Mb/s — 'hundreds of megabits per second'. The "
         "assumptions are the paper's: free-space (maximum) interference "
         "from every station in the metro disc, and signal processing able "
         "to despread at these bandwidths ('optimistic').\n";
  return 0;
}
