// Section 7.2 — performance of the scheduling scheme. Reproduces every
// number in that subsection and validates each against simulation:
//   * access probability p(1-p), 21% at p = 0.3;
//   * expected wait 1/(p(1-p)) = 4.76 slots at p = 0.3 (geometric model);
//   * quarter-slot packets -> 75% packing -> ~15% of all time per neighbour;
//   * receive-duty sweep showing ~0.3 is near-optimal for system throughput;
//   * transmit duty cycle approaching 50% with no head-of-line blocking.
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/delay_model.hpp"
#include "analysis/schedule_math.hpp"
#include "analysis/table.hpp"
#include "common.hpp"
#include "core/access.hpp"

namespace {

using drn::StationId;
using drn::analysis::Table;
namespace core = drn::core;
namespace sim = drn::sim;

void analytic_table() {
  std::cout << "Analytic scheduling figures (Section 7.2):\n\n";
  Table t({"p", "q=p(1-p)", "wait slots 1/q", "packing eff (f=1/4)",
           "usable time/neighbour"});
  for (double p : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    t.add_row({Table::num(p, 2),
               Table::num(drn::analysis::access_probability(p), 3),
               Table::num(drn::analysis::expected_wait(p).value(), 2),
               Table::num(drn::analysis::packing_efficiency(0.25), 3),
               Table::num(drn::analysis::usable_time_fraction(p, 0.25), 4)});
  }
  t.print(std::cout);
  std::cout << "\nPaper anchors at p = 0.3: q = 0.21, wait = 4.76 slots, "
               "packing 75%, ~15% usable time per neighbour.\n\n";
}

void measured_wait_distribution() {
  std::cout << "Measured access wait vs the Bernoulli/geometric model "
               "(random clock phases, window search of core/access):\n\n";
  const double slot = 1.0;
  Table t({"p", "measured mean wait (slots)", "model 1/(p(1-p))"});
  for (double p : {0.2, 0.3, 0.4, 0.5}) {
    const core::Schedule s(91, slot, p);
    drn::Rng rng(17);
    double wait = 0.0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i) {
      const core::ClockModel other(rng.uniform(1.0, 1.0e4), 1.0);
      std::vector<core::WindowConstraint> cs = {
          {&s, core::ClockModel(), false, drn::units::Seconds{0.0}},
          {&s, other, true, drn::units::Seconds{0.0}},
      };
      core::AccessRequest req;
      req.earliest_local = drn::units::Seconds{rng.uniform(0.0, 1.0e4)};
      req.duration = drn::units::Seconds{0.25};
      req.horizon = drn::units::Seconds{50000.0};
      wait += (*find_transmission_start(req, cs) - req.earliest_local).value();
    }
    t.add_row({Table::num(p, 2), Table::num(wait / trials, 2),
               Table::num(drn::analysis::expected_wait(p).value(), 2)});
  }
  t.print(std::cout);
  std::cout << "\n";
}

void wait_distribution() {
  std::cout << "Wait DISTRIBUTION vs the Bernoulli/geometric model at p = "
               "0.3 (Section 7.2: 'fairly well modeled by a Bernoulli "
               "process'):\n\n";
  const double p = 0.3;
  const core::Schedule s(92, 1.0, p);
  drn::Rng rng(18);
  std::vector<double> waits;
  for (int i = 0; i < 4000; ++i) {
    const core::ClockModel other(rng.uniform(1.0, 1.0e4), 1.0);
    std::vector<core::WindowConstraint> cs = {
        {&s, core::ClockModel(), false, drn::units::Seconds{0.0}},
        {&s, other, true, drn::units::Seconds{0.0}},
    };
    core::AccessRequest req;
    req.earliest_local = drn::units::Seconds{rng.uniform(0.0, 1.0e4)};
    req.duration = drn::units::Seconds{0.25};
    req.horizon = drn::units::Seconds{50000.0};
    waits.push_back(
        (*find_transmission_start(req, cs) - req.earliest_local).value());
  }
  const std::size_t bins = 12;
  const auto measured = drn::analysis::binned_wait_fractions(waits, bins);
  const auto model = drn::analysis::geometric_wait_pmf(p, bins);
  Table t({"wait (slots)", "measured fraction", "geometric model"});
  for (std::size_t k = 0; k < bins; ++k) {
    t.add_row({(k + 1 == bins ? ">= " : "") + std::to_string(k),
               Table::num(measured[k], 4), Table::num(model[k], 4)});
  }
  t.print(std::cout);
  std::cout << "\nTotal-variation distance = "
            << Table::num(
                   drn::analysis::total_variation(measured, model), 3)
            << " (0 = identical). The measured distribution is geometric-"
               "shaped with a heavier zero bin: a window may already be "
               "OPEN when the packet arrives, which the whole-slot Bernoulli "
               "model cannot express.\n\n";
}

void duty_cycle_sweep() {
  std::cout << "Receive-duty-cycle sweep on a 30-station network (delivered "
               "throughput and delay; the thesis finds ~30% near-optimal):\n\n";
  Table t({"p", "delivered", "mean delay (slots)", "mean tx duty",
           "collision losses"});
  for (double p : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    auto cfg = drn::bench::multihop_config();
    cfg.receive_fraction = p;
    auto scenario = drn::bench::make_scenario(30, 900.0, 99, cfg);
    sim::SimulatorConfig sc{drn::bench::scheme_criterion()};
    sim::Simulator simulator(scenario.gains, sc);
    const double duration = 3.0;
    const auto& m = drn::bench::run_scheme(scenario, simulator, 700.0,
                                           duration, 99, 120.0);
    t.add_row({Table::num(p, 2), Table::num(m.delivered()),
               Table::num(m.delay().mean() / cfg.slot_s, 1),
               Table::num(m.mean_duty_cycle(duration), 3),
               Table::num(m.total_hop_losses())});
  }
  t.print(std::cout);
  std::cout << "\nLow p starves receivers (senders rarely find windows); high "
               "p starves transmitters. Delay is minimised in the 0.3-0.5 "
               "band, matching the thesis's ~30% choice once sender-side "
               "contention across several neighbours is in play.\n\n";
}

void saturation_duty_cycle() {
  std::cout << "Transmit duty under saturation (one busy pair, no "
               "head-of-line blocking; Section 7.2 says duty can approach "
               "(1-p) toward ~50-70%, bounded by window overlap):\n\n";
  // Station 0 saturated toward six neighbours with independent phases: the
  // usable share of its transmit windows is the union over neighbours,
  // (1-p)(1 - (1-p)^k) -> ~0.62 of all time at k = 6, ~0.46 after quarter-
  // slot packing — the paper's "approaching 50%".
  constexpr StationId kStations = 7;
  drn::radio::PropagationMatrix gains(kStations);
  for (StationId a = 0; a < kStations; ++a)
    for (StationId b = static_cast<StationId>(a + 1); b < kStations; ++b)
      gains.set_gain(a, b, drn::radio::LinearGain{1.0e-4});
  auto cfg = drn::bench::multihop_config();
  cfg.max_power_w = 1.0;
  cfg.exact_clock_models = true;
  cfg.respect_third_party_windows = false;
  drn::Rng rng(5);
  auto net = drn::core::build_scheduled_network(
      gains, drn::bench::scheme_criterion(), cfg, rng);
  sim::SimulatorConfig sc{drn::bench::scheme_criterion()};
  sim::Simulator simulator(gains, sc);
  for (StationId s = 0; s < kStations; ++s)
    simulator.set_mac(s, std::move(net.macs[s]));
  // Saturate 0 -> every neighbour, round-robin.
  const double duration = 20.0;
  for (int i = 0; i < 8000; ++i) {
    sim::Packet p;
    p.source = 0;
    p.destination = static_cast<StationId>(1 + i % (kStations - 1));
    p.size_bits = net.packet_bits;
    simulator.inject(0.0, p);
  }
  simulator.run_until(duration);
  Table t({"station", "tx duty cycle", "(1-p) bound", "union model x packing"});
  const double p = cfg.receive_fraction;
  const double model =
      (1.0 - p) * (1.0 - std::pow(1.0 - p, double(kStations - 1))) * 0.75;
  t.add_row({"0 (saturated, 6 neighbours)",
             Table::num(simulator.metrics().duty_cycle(0, duration), 3),
             Table::num(1.0 - p, 2), Table::num(model, 3)});
  t.print(std::cout);
  std::cout << "\nWith several independently-phased neighbours and no "
               "head-of-line blocking the transmitter approaches a ~50% duty "
               "cycle, as Section 7.2 claims.\n";
}

}  // namespace

int main() {
  std::cout << "Section 7.2 — performance of the scheduling scheme\n\n";
  analytic_table();
  measured_wait_distribution();
  wait_distribution();
  duty_cycle_sweep();
  saturation_duty_cycle();
  return 0;
}
