// Ablation A5 — multiuser detection (the paper's footnote 2: receivers that
// "model and subtract only a few of the strongest interfering signals" can
// beat the treat-everything-as-noise bound, but complexity is exponential in
// the number of cancelled signals, so k stays small). Sweep k on a dense hot
// spot running ALOHA (plenty of collisions to rescue) and on the scheduled
// scheme (already collision-free: nothing left for k to buy).
#include <iostream>
#include <memory>
#include <string>

#include "analysis/table.hpp"
#include "baselines/aloha.hpp"
#include "common.hpp"

namespace {

using drn::StationId;
using drn::analysis::Table;
namespace sim = drn::sim;

struct Outcome {
  double delivery = 0.0;
  std::uint64_t t1 = 0;
  std::uint64_t t2 = 0;
  std::uint64_t t3 = 0;
};

Outcome run_aloha(int k, std::uint64_t seed) {
  auto cfg = drn::bench::multihop_config();
  cfg.exact_clock_models = true;
  auto scenario = drn::bench::make_scenario(20, 600.0, seed, cfg);
  // Narrowband receiver (0 dB threshold): ALOHA's collisions are SINR
  // failures a canceller can actually rescue. (Under the 23 dB spread
  // design, ALOHA's losses are almost purely Type 3 — the receiver's own
  // transmitter — which no cancellation fixes.)
  sim::SimulatorConfig sc{drn::radio::ReceptionCriterion(drn::radio::Hertz{1.0e6}, drn::radio::BitsPerSecond{1.0e6}, drn::radio::Decibels{0.0})};
  sc.multiuser_subtract_k = k;
  sim::Simulator sim(scenario.gains, sc);
  drn::baselines::ContentionConfig cc;
  cc.power_w = 1.0e-4;
  cc.max_retries = 2;
  cc.backoff_mean_s = 0.005;
  for (StationId s = 0; s < scenario.gains.size(); ++s)
    sim.set_mac(s, std::make_unique<drn::baselines::PureAloha>(cc));
  sim.set_router(scenario.tables.router());
  drn::Rng rng(seed);
  for (const auto& inj : sim::poisson_traffic(
           800.0, 2.0, scenario.net.packet_bits,
           sim::uniform_pairs(scenario.gains.size()), rng))
    sim.inject(inj.time_s, inj.packet);
  sim.run_until(40.0);
  return {sim.metrics().delivery_ratio(),
          sim.metrics().losses(sim::LossType::kType1),
          sim.metrics().losses(sim::LossType::kType2),
          sim.metrics().losses(sim::LossType::kType3)};
}

Outcome run_scheme(int k, std::uint64_t seed) {
  auto cfg = drn::bench::multihop_config();
  cfg.exact_clock_models = true;
  auto scenario = drn::bench::make_scenario(20, 600.0, seed, cfg);
  sim::SimulatorConfig sc{drn::bench::scheme_criterion()};
  sc.multiuser_subtract_k = k;
  sim::Simulator sim(scenario.gains, sc);
  const auto& m =
      drn::bench::run_scheme(scenario, sim, 800.0, 2.0, seed, 60.0);
  return {m.delivery_ratio(), m.losses(sim::LossType::kType1),
          m.losses(sim::LossType::kType2), m.losses(sim::LossType::kType3)};
}

}  // namespace

int main() {
  std::cout << "Ablation A5 — multiuser detection (footnote 2): subtract the "
               "k strongest interferers before the SINR test\n\n";
  Table t({"k", "ALOHA(narrowband) delivery", "T1", "T2", "T3",
           "scheme delivery", "scheme losses"});
  for (int k : {0, 1, 2, 4}) {
    const auto aloha = run_aloha(k, 1234);
    const auto scheme = run_scheme(k, 1234);
    t.add_row({Table::num(std::uint64_t(k)), Table::num(aloha.delivery, 4),
               Table::num(aloha.t1), Table::num(aloha.t2),
               Table::num(aloha.t3), Table::num(scheme.delivery, 4),
               Table::num(scheme.t1 + scheme.t2 + scheme.t3)});
  }
  t.print(std::cout);
  std::cout
      << "\nCancelling a few strong interferers rescues many of the "
         "random-access collisions (mostly Type 1/2; Type 3 persists — the "
         "receiver's own transmitter saturates any canceller). The scheduled "
         "scheme gains nothing because it never collided in the first place "
         "— scheduling substitutes for per-packet signal processing, which "
         "is the paper's core trade.\n";
  return 0;
}
