// Ablation A1 — why pseudo-random unaligned schedules (Section 7.1)?
// Compares three schedule designs for a pair of stations across random clock
// phases:
//   (a) simple periodic schedules  — phase-lock starvation: some phases give
//       ZERO usable overlap forever;
//   (b) identical clocks + pseudo-random schedule — always starved (the
//       degenerate case the random clock offsets exist to avoid);
//   (c) pseudo-random schedules with random offsets — every phase works.
#include <cmath>
#include <iostream>
#include <optional>
#include <vector>

#include "analysis/table.hpp"
#include "core/access.hpp"
#include "core/schedule.hpp"

namespace {

using drn::analysis::Table;
namespace core = drn::core;

// Fraction of random phases for which a window exists within `horizon`
// slots, and the mean wait among successful phases.
struct PhaseStudy {
  double success_fraction = 0.0;
  double mean_wait_slots = 0.0;
};

/// `periodic`: if >0, use a deterministic cycle of that many slots with the
/// first 30% as receive slots instead of the hash schedule.
PhaseStudy study(bool periodic, double receive_fraction, int trials,
                 std::uint64_t seed, double min_phase, double max_phase) {
  drn::Rng rng(seed);
  int hits = 0;
  double wait = 0.0;
  for (int i = 0; i < trials; ++i) {
    const double phase = rng.uniform(min_phase, max_phase);  // slots of offset
    double found = -1.0;
    if (periodic) {
      // Periodic cycle of 10 unit slots, first 3 receive: my slot k is a
      // transmit slot iff k mod 10 >= 3; their slot grid is offset by
      // `phase`. A quarter-slot packet at t fits iff it lies inside one of
      // my transmit slots AND inside one of their receive slots.
      for (int k = 0; k < 500 && found < 0.0; ++k) {
        if (k % 10 < 3) continue;  // my receive slot
        for (double frac = 0.0; frac <= 0.75; frac += 0.25) {
          const double t = k + frac;
          const double their_local = t + phase;
          const auto j = static_cast<long>(std::floor(their_local));
          const bool their_rx = j % 10 < 3;
          const bool inside_their_slot =
              their_local + 0.25 <= static_cast<double>(j) + 1.0;
          if (their_rx && inside_their_slot) {
            found = t;
            break;
          }
        }
      }
    } else {
      const core::Schedule s(77, 1.0, receive_fraction);
      const core::ClockModel other(phase, 1.0);
      std::vector<core::WindowConstraint> cs = {
          {&s, core::ClockModel(), false, drn::units::Seconds{0.0}},
          {&s, other, true, drn::units::Seconds{0.0}},
      };
      core::AccessRequest req;
      req.earliest_local = drn::units::Seconds{0.0};
      req.duration = drn::units::Seconds{0.25};
      req.horizon = drn::units::Seconds{500.0};
      if (const auto start = find_transmission_start(req, cs))
        found = start->value();
    }
    if (found >= 0.0) {
      ++hits;
      wait += found;
    }
  }
  PhaseStudy out;
  out.success_fraction = static_cast<double>(hits) / trials;
  out.mean_wait_slots = hits > 0 ? wait / hits : 0.0;
  return out;
}

}  // namespace

int main() {
  std::cout << "Ablation A1 — schedule design (Section 7.1's argument)\n\n";
  const int trials = 2000;
  Table t({"design", "phases with any usable window", "mean wait (slots)"});

  const auto periodic = study(true, 0.3, trials, 1, 0.0, 10.0);
  t.add_row({"periodic cycle (10 slots, 3 rx)",
             Table::num(periodic.success_fraction, 3),
             Table::num(periodic.mean_wait_slots, 2)});

  const auto random_sched = study(false, 0.3, trials, 2, 1.0, 1000.0);
  t.add_row({"pseudo-random, offset >= 1 slot (paper's rule)",
             Table::num(random_sched.success_fraction, 3),
             Table::num(random_sched.mean_wait_slots, 2)});

  const auto subslot = study(false, 0.3, trials, 3, 0.0, 1.0);
  t.add_row({"pseudo-random, sub-slot offset (correlated)",
             Table::num(subslot.success_fraction, 3),
             Table::num(subslot.mean_wait_slots, 2)});

  // The degenerate identical-phase case for the pseudo-random design.
  {
    const core::Schedule s(77, 1.0, 0.3);
    std::vector<core::WindowConstraint> cs = {
        {&s, core::ClockModel(), false, drn::units::Seconds{0.0}},
        {&s, core::ClockModel(), true, drn::units::Seconds{0.0}},  // same clock, same schedule
    };
    core::AccessRequest req;
    req.earliest_local = drn::units::Seconds{0.0};
    req.duration = drn::units::Seconds{0.25};
    req.horizon = drn::units::Seconds{5000.0};
    const bool any = find_transmission_start(req, cs).has_value();
    t.add_row({"pseudo-random, IDENTICAL clocks", any ? "works" : "0 (starved)",
               "-"});
  }
  t.print(std::cout);
  std::cout
      << "\nPaper check: 'Simple periodic schedules will not do. If two "
         "stations ... happen to be running at the same phase, then "
         "communication between them would not be possible.' The periodic "
         "design PERMANENTLY starves a positive fraction of phases (those "
         "where the receive block never lines up with a transmit block); with "
         "offsets of at least one slot ('if there is at least one slot's "
         "time difference ... the schedules will be uncorrelated') the "
         "pseudo-random schedule finds a window for EVERY phase; sub-slot "
         "offsets leave the two stations indexing adjacent slots of the "
         "same hash sequence, and a fraction of those phases starve — "
         "which is why stations initialise their clocks with many random "
         "high-order bits.\n";
  return 0;
}
