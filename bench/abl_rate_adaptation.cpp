// Ablation A6 — per-link rate selection (footnote 9: "stations might vary
// the rate at which they communicate depending on the observed
// interference"). Ten isolated point-to-point links at distances 50..500 m,
// all transmitting at the SAME fixed power (no power control): the base
// design runs every link at the rate sized for the worst link; the adaptive
// design picks each link's highest feasible rung of a x2 ladder. Goodput is
// measured by actually running the scheduled MAC with per-link rates through
// the simulator (variable airtimes, rate-dependent SINR thresholds).
//
// Note the interplay with Section 6.1: WITH the paper's power control every
// link is delivered the same SNR on purpose, and adaptation has nothing to
// harvest — rate adaptation is the alternative to power control for
// exploiting link diversity, not an addition to it.
#include <cmath>
#include <iostream>
#include <memory>
#include <string>

#include "analysis/table.hpp"
#include "common.hpp"
#include "core/rate_selection.hpp"

namespace {

using drn::StationId;
using drn::analysis::Table;
namespace core = drn::core;
namespace sim = drn::sim;

constexpr double kPowerW = 1.0e-4;
constexpr double kThermalW = 1.8e-8;  // sets the worst link near design SNR
constexpr double kSlot = 0.01;
constexpr double kAirtime = kSlot / 4.0;
constexpr int kLinks = 10;

/// Pairs 5 km apart so links barely interact; link i spans 50*(i+1) metres.
drn::radio::PropagationMatrix make_gains() {
  drn::geo::Placement placement;
  for (int i = 0; i < kLinks; ++i) {
    const double base = 5000.0 * i;
    placement.push_back({base, 0.0});
    placement.push_back({base, 50.0 * (i + 1)});
  }
  const drn::radio::FreeSpacePropagation model;
  return drn::radio::PropagationMatrix::from_placement(placement, model);
}

double run(bool adaptive, const drn::radio::PropagationMatrix& gains,
           const core::RateLadder& ladder, Table* per_link) {
  const auto criterion = drn::bench::scheme_criterion();
  sim::SimulatorConfig sc{criterion};
  sc.thermal_noise_w = kThermalW;
  sim::Simulator sim(gains, sc);

  const core::Schedule schedule(0xAB1E, kSlot, 0.3);
  drn::Rng rng(99);
  std::vector<core::StationClock> clocks;
  for (int s = 0; s < 2 * kLinks; ++s)
    clocks.push_back(core::StationClock::random(rng, core::Seconds{1.0e5}, 10.0));

  std::vector<double> rates(static_cast<std::size_t>(kLinks));
  for (int i = 0; i < kLinks; ++i) {
    const auto tx = static_cast<StationId>(2 * i);
    const auto rx = static_cast<StationId>(2 * i + 1);
    const double snr = kPowerW * gains.gain(rx, tx) / kThermalW;
    rates[static_cast<std::size_t>(i)] =
        adaptive ? core::rate_for_link(kPowerW * gains.gain(rx, tx),
                                       kThermalW, criterion.bandwidth_hz(),
                                       criterion.margin_db(), ladder)
                 : criterion.data_rate_bps();
    if (per_link != nullptr) {
      per_link->add_row(
          {std::to_string(50 * (i + 1)) + " m",
           Table::num(drn::radio::to_db(snr), 1),
           Table::num(rates[static_cast<std::size_t>(i)] / 1.0e6, 2)});
    }

    core::ScheduledStationConfig cfg{schedule,
                                     clocks[tx],
                                     kAirtime,
                                     0.0002,
                                     core::PowerControl::fixed(kPowerW),
                                     20000.0,
                                     8192,
                                     0.0,
                                     0.25,
                                     criterion.data_rate_bps()};
    core::Neighbor n;
    n.id = rx;
    n.gain = gains.gain(rx, tx);
    n.clock = core::ClockModel::exact(clocks[tx], clocks[rx]);
    n.rate_bps = rates[static_cast<std::size_t>(i)];
    core::NeighborTable table;
    table.add(n);
    sim.set_mac(tx, std::make_unique<core::ScheduledStation>(cfg, table));

    // Receivers idle (a trivial MAC via ScheduledStation with no neighbours
    // would search nothing; give them an empty table).
    core::ScheduledStationConfig rx_cfg{schedule,
                                        clocks[rx],
                                        kAirtime,
                                        0.0002,
                                        core::PowerControl::fixed(kPowerW)};
    sim.set_mac(rx, std::make_unique<core::ScheduledStation>(
                        rx_cfg, core::NeighborTable()));
  }

  // Saturate every link: packets sized to one quarter slot at the LINK rate
  // (higher rate = more bits per transmission).
  const double duration = 10.0;
  for (int i = 0; i < kLinks; ++i) {
    const double bits = rates[static_cast<std::size_t>(i)] * kAirtime;
    for (int k = 0; k < 600; ++k) {
      sim::Packet p;
      p.source = static_cast<StationId>(2 * i);
      p.destination = static_cast<StationId>(2 * i + 1);
      p.size_bits = bits;
      sim.inject(0.0, p);
    }
  }
  sim.run_until(duration);

  // Goodput: delivered bits per second across all links.
  double bits = 0.0;
  // delivered() counts packets; recover bits from per-link delivery via
  // hop successes? Packets are uniform per link, so count via metrics is
  // not enough — use airtime accounting instead: every successful hop of
  // link i carried rates[i]*kAirtime bits. hop successes are not split per
  // link in Metrics, so approximate with delivered packets * link bits via
  // a per-link recount: all packets of link i have the same size; total
  // delivered bits = sum over links of delivered_i * bits_i. We lack
  // per-link delivered counts in Metrics, so derive from airtime: sender i
  // airtime * rate_i = bits radiated; with zero losses radiated ~ delivered.
  for (int i = 0; i < kLinks; ++i) {
    bits += sim.metrics().airtime_s(static_cast<StationId>(2 * i)) *
            rates[static_cast<std::size_t>(i)];
  }
  // Confirm the collision-free invariant held (losses would invalidate the
  // airtime-based goodput accounting).
  if (sim.metrics().total_hop_losses() != 0) return -1.0;
  return bits / duration;
}

}  // namespace

int main() {
  std::cout << "Ablation A6 — per-link rate selection vs the fixed design "
               "rate (fixed transmit power, no power control)\n\n";
  const auto gains = make_gains();
  const auto ladder = core::geometric_ladder(1.0e6, 2.0, 9);  // 1..256 Mb/s

  Table per_link({"link length", "SNR dB", "adaptive rate Mb/s"});
  const double adaptive = run(true, gains, ladder, &per_link);
  const double fixed = run(false, gains, ladder, nullptr);
  per_link.print(std::cout);

  std::cout << '\n';
  Table t({"design", "aggregate goodput Mb/s", "multiple"});
  t.add_row({"fixed design rate (1 Mb/s everywhere)",
             Table::num(fixed / 1.0e6, 2), "1.00"});
  t.add_row({"per-link ladder rate", Table::num(adaptive / 1.0e6, 2),
             Table::num(adaptive / fixed, 2)});
  t.print(std::cout);
  std::cout
      << "\nShort links run orders of magnitude faster than the worst-case "
         "design rate; the paper's fixed-rate choice trades this away for "
         "simplicity (and its power control deliberately equalises SNR, "
         "making the fixed rate efficient when power, not rate, adapts).\n";
  return 0;
}
