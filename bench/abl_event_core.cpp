// Event-core throughput benchmark: events/s and peak queue memory across
// network scale, MAC, and churn.
//
// Each cell runs one runner::run_trial at M stations (constant density:
// the region side scales with sqrt(M)) under the scheme or ALOHA, with
// dynamics churn off or on, and reports the simulator's QueueStats next to
// the measured wall time. Cells run strictly serially on the calling thread
// so the wall clocks are honest; events/s = events_processed / wall_s.
//
// This is the acceptance harness for the indexed-heap event core: the
// pre-rewrite std::priority_queue numbers (captured with the identical
// instrumentation patched into the seed tree) live in EXPERIMENTS.md, and
// the M=4096 churn cell is the one contracted to improve >= 1.5x.
//
// Emits BENCH_core.json (schema drn-bench-core-v1).
//
//   bench_abl_event_core [--smoke] [--out PATH] [--jobs N]
//
// --jobs is accepted for CLI parity with the other benches but ignored:
// parallel cells would corrupt each other's wall times.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "runner/json.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"

namespace {

using namespace drn;

struct BenchConfig {
  std::vector<std::size_t> stations{256, 1024, 4096};
  /// Region side at 256 stations; scaled by sqrt(M/256) to hold density.
  double region_at_256_m = 2500.0;
  /// Offered load: half a packet per station-second over the window.
  double rate_per_station_pps = 0.5;
  double duration_s = 0.2;
  double drain_s = 2.0;
  /// Churn cells: mean one teardown every 1/8 s network-wide, 1 s downtime.
  double churn_rate_per_s = 8.0;
  double mean_downtime_s = 1.0;
  /// Beacons only in churn cells (rejoin discovery); 4 s keeps the beacon
  /// broadcast load tractable at M=4096 (every broadcast opens up to M-1
  /// receptions).
  double beacon_interval_s = 4.0;
  std::uint64_t master_seed = 606;
};

BenchConfig smoke_config() {
  BenchConfig c;
  c.stations = {32, 64};
  // The full config's 0.2 s window offers ~3 packets at M=32 — a cell can
  // legitimately process zero events and the schema check demands activity
  // in every cell. Stretch the window and the per-station rate instead of
  // the station count so smoke stays fast.
  c.rate_per_station_pps = 2.0;
  c.duration_s = 2.0;
  c.churn_rate_per_s = 4.0;
  c.beacon_interval_s = 1.0;
  return c;
}

runner::ScenarioSpec spec_for(const BenchConfig& c, std::size_t stations,
                              runner::MacKind mac, bool churn) {
  runner::ScenarioSpec spec;
  spec.stations = stations;
  spec.region_m =
      c.region_at_256_m * std::sqrt(static_cast<double>(stations) / 256.0);
  spec.mac = mac;
  spec.rate_pps = c.rate_per_station_pps * static_cast<double>(stations);
  spec.duration_s = c.duration_s;
  spec.drain_s = c.drain_s;
  if (churn) {
    spec.dynamics.churn_rate_per_s = c.churn_rate_per_s;
    spec.dynamics.mean_downtime_s = c.mean_downtime_s;
    spec.net.beacon_interval_s = c.beacon_interval_s;
    spec.net.neighbor_timeout_s = 3.0 * c.beacon_interval_s;
    spec.net.readopt_neighbors = true;
  }
  return spec;
}

int run(bool smoke, const std::string& out_path) {
  const BenchConfig cfg = smoke ? smoke_config() : BenchConfig{};

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << '\n';
    return 3;
  }
  runner::json::Writer w(out);
  w.begin_object();
  w.key("schema").value("drn-bench-core-v1");
  w.key("smoke").value(smoke);
  w.key("duration_s").value(cfg.duration_s);
  w.key("drain_s").value(cfg.drain_s);
  w.key("rate_per_station_pps").value(cfg.rate_per_station_pps);
  w.key("churn_rate_per_s").value(cfg.churn_rate_per_s);
  w.key("cells").begin_array();

  for (std::size_t stations : cfg.stations) {
    for (runner::MacKind mac :
         {runner::MacKind::kScheme, runner::MacKind::kAloha}) {
      for (bool churn : {false, true}) {
        const runner::ScenarioSpec spec = spec_for(cfg, stations, mac, churn);
        const std::uint64_t seed = runner::trial_seed(cfg.master_seed, 0);
        const auto t0 = std::chrono::steady_clock::now();
        const runner::TrialResult r = runner::run_trial(spec, seed);
        const double wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        const double events_per_s =
            wall_s > 0.0 ? static_cast<double>(r.events_processed) / wall_s
                         : 0.0;
        w.begin_object();
        w.key("stations").value(static_cast<std::uint64_t>(stations));
        w.key("mac").value(runner::mac_name(mac));
        w.key("churn").value(churn);
        w.key("events_processed").value(r.events_processed);
        w.key("events_per_s").value(events_per_s);
        w.key("peak_queue_bytes").value(r.peak_queue_bytes);
        w.key("wall_s").value(wall_s);
        w.key("offered").value(r.offered);
        w.key("delivery_ratio").value(r.delivery_ratio);
        w.end_object();
        std::cerr << "M=" << stations << ' ' << runner::mac_name(mac)
                  << (churn ? " +churn" : "") << ": "
                  << r.events_processed << " events in " << wall_s << " s ("
                  << static_cast<std::uint64_t>(events_per_s)
                  << " ev/s), peak queue " << r.peak_queue_bytes
                  << " bytes\n";
      }
    }
  }

  w.end_array();
  w.end_object();
  out << '\n';
  std::cerr << "wrote " << out_path << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_core.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      ++i;  // accepted, unused: cells must run serially for honest timing
    } else {
      std::cerr << "usage: bench_abl_event_core [--smoke] [--out PATH] "
                   "[--jobs N]\n";
      return 2;
    }
  }
  try {
    return run(smoke, out_path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
