// Section 4's quantitative claims: capacity per kilohertz at the din-limited
// SNRs, the no-gain-from-lower-duty-cycle argument, and the 6 dB per
// distance-doubling falloff.
#include <iostream>

#include "analysis/table.hpp"
#include "radio/noise_growth.hpp"
#include "radio/reception.hpp"
#include "radio/units.hpp"

int main() {
  using drn::analysis::Table;
  using namespace drn::radio;

  std::cout << "Section 4 — Shannon capacity at din-limited SNRs\n\n";
  {
    Table t({"SNR (linear)", "SNR (dB)", "C/W (b/s/Hz)", "b/s per kHz",
             "paper says"});
    t.add_row({"0.01", Table::num(to_db(0.01), 1),
               Table::num(capacity_per_hz(LinearGain{0.01}), 5),
               Table::num(capacity_per_hz(LinearGain{0.01}) * 1000.0, 1),
               "~14 b/s/kHz (eta=1)"});
    t.add_row({"0.04", Table::num(to_db(0.04), 1),
               Table::num(capacity_per_hz(LinearGain{0.04}), 5),
               Table::num(capacity_per_hz(LinearGain{0.04}) * 1000.0, 1),
               "~56 b/s/kHz (eta=0.25)"});
    t.print(std::cout);
  }

  std::cout << "\nNo throughput gain from duty cycle below ~1 (linear-regime "
               "argument):\n\n";
  {
    // Halving eta doubles SNR, which (at low SNR) doubles the rate while
    // transmitting — but you transmit half as often: net throughput flat.
    Table t({"eta", "SNR @ M=1e6", "C/W while tx", "throughput = eta*C/W"});
    for (double eta : {1.0, 0.5, 0.25, 0.125, 0.0625}) {
      const double snr = nearest_neighbor_snr(1000000, eta).value();
      const double cw = capacity_per_hz(LinearGain{snr});
      t.add_row({Table::num(eta, 4), Table::num(snr, 4), Table::num(cw, 4),
                 Table::num(eta * cw, 5)});
    }
    t.print(std::cout);
    std::cout << "\nThe throughput column is nearly constant at small SNR "
                 "(log2(1+x) ~ 1.44x), as the paper argues.\n";
  }

  std::cout << "\n6 dB per doubling of reach (only nearby neighbours are "
               "worth talking to):\n\n";
  {
    Table t({"distance (xR0)", "SNR dB @ M=1e6, eta=0.25", "relative"});
    const double base = nearest_neighbor_snr(1000000, 0.25).value();
    for (double mult : {1.0, 2.0, 4.0, 8.0}) {
      const double snr =
          snr_at_distance_multiple(1000000, 0.25, mult).value();
      t.add_row({Table::num(mult, 0), Table::num(to_db(snr), 2),
                 Table::num(to_db(snr / base), 1) + " dB"});
    }
    t.print(std::cout);
  }
  return 0;
}
