// Engineering microbenchmarks (google-benchmark) for the hot paths: the
// schedule hash, window search, SINR event processing, event queue churn,
// and routing-table construction.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/access.hpp"
#include "sim/event_queue.hpp"

namespace {

using drn::StationId;
namespace core = drn::core;
namespace sim = drn::sim;

void BM_ScheduleLookup(benchmark::State& state) {
  const core::Schedule s(1, 0.01, 0.3);
  std::int64_t slot = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.is_receive_slot(slot++));
  }
}
BENCHMARK(BM_ScheduleLookup);

void BM_WindowSearch(benchmark::State& state) {
  const core::Schedule s(2, 0.01, 0.3);
  const core::ClockModel other(123.456, 1.0000123);
  std::vector<core::WindowConstraint> cs = {
      {&s, core::ClockModel(), false, core::Seconds{0.0}},
      {&s, other, true, core::Seconds{0.0002}},
  };
  double earliest = 0.0;
  for (auto _ : state) {
    core::AccessRequest req;
    req.earliest_local = core::Seconds{earliest};
    req.duration = core::Seconds{0.0025};
    req.horizon = core::Seconds{1000.0};
    const auto start = find_transmission_start(req, cs);
    benchmark::DoNotOptimize(start);
    earliest = start->value() + 0.0025;
  }
}
BENCHMARK(BM_WindowSearch);

void BM_EventQueueChurn(benchmark::State& state) {
  sim::EventQueue q;
  drn::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    sim::Event e;  // drn-lint: allow(raw-event-copy)
    e.time_s = rng.uniform();
    e.kind = sim::EventKind::kTimer;
    q.push(e);
  }
  double t = 1.0;
  for (auto _ : state) {
    sim::Event e = q.pop();  // drn-lint: allow(raw-event-copy)
    benchmark::DoNotOptimize(e);
    e.time_s = t += 1e-4;
    q.push(e);
  }
}
BENCHMARK(BM_EventQueueChurn);

// -- event-core section: the indexed 4-ary heap's primitive operations ------

void BM_EventQueuePushPop(benchmark::State& state) {
  // Steady-state push+pop at a given standing queue depth: the per-event
  // cost run_until pays when no cancellation happens.
  const auto depth = static_cast<std::size_t>(state.range(0));
  sim::EventQueue q;
  drn::Rng rng(5);
  for (std::size_t i = 0; i < depth; ++i) {
    sim::Event e;  // drn-lint: allow(raw-event-copy)
    e.time_s = rng.uniform();
    e.kind = sim::EventKind::kTimer;
    q.push(e);
  }
  double t = 1.0;
  for (auto _ : state) {
    sim::Event e = q.pop();  // drn-lint: allow(raw-event-copy)
    e.time_s = t += 1e-4;
    benchmark::DoNotOptimize(q.push(e));
  }
  state.SetLabel("depth=" + std::to_string(depth));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_EventQueueCancel(benchmark::State& state) {
  // The cancel-heavy pattern the scheme's replan produces: arm a timer,
  // supersede it, arm another. Every cancelled entry is a tombstone the
  // compactor must absorb; this measures push+cancel+push+pop amortized
  // over compaction.
  sim::EventQueue q;
  drn::Rng rng(6);
  for (int i = 0; i < 1024; ++i) {
    sim::Event e;  // drn-lint: allow(raw-event-copy)
    e.time_s = 1.0 + rng.uniform();
    e.kind = sim::EventKind::kTimer;
    q.push(e);
  }
  double t = 2.0;
  for (auto _ : state) {
    sim::Event e;  // drn-lint: allow(raw-event-copy)
    e.kind = sim::EventKind::kTimer;
    e.time_s = t += 1e-4;
    const sim::EventHandle doomed = q.push(e);
    benchmark::DoNotOptimize(q.cancel(doomed));
    e.time_s += 1e-5;
    q.push(e);
    benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_EventQueueCancel);

void BM_EventQueuePopIfBefore(benchmark::State& state) {
  // run_until's actual primitive: the horizon test and the pop fused into
  // one heap-top read.
  sim::EventQueue q;
  drn::Rng rng(8);
  for (int i = 0; i < 4096; ++i) {
    sim::Event e;  // drn-lint: allow(raw-event-copy)
    e.time_s = rng.uniform();
    e.kind = sim::EventKind::kTimer;
    q.push(e);
  }
  double t = 1.0;
  for (auto _ : state) {
    auto e = q.pop_if_before(1e9);
    benchmark::DoNotOptimize(e);
    e->time_s = t += 1e-4;
    q.push(*e);
  }
}
BENCHMARK(BM_EventQueuePopIfBefore);

void BM_SimulatorEvent(benchmark::State& state) {
  // Cost per simulated hop on a mid-size network under load.
  const auto stations = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto cfg = drn::bench::multihop_config();
    cfg.exact_clock_models = true;
    auto scenario =
        drn::bench::make_scenario(stations, 1000.0, 42, cfg);
    sim::SimulatorConfig sc{drn::bench::scheme_criterion()};
    sim::Simulator simulator(scenario.gains, sc);
    state.ResumeTiming();
    const auto& m =
        drn::bench::run_scheme(scenario, simulator, 300.0, 1.0, 42, 30.0);
    benchmark::DoNotOptimize(m.delivered());
  }
  state.SetLabel("stations=" + std::to_string(stations));
}
BENCHMARK(BM_SimulatorEvent)->Arg(25)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_RoutingTablesBuild(benchmark::State& state) {
  const auto stations = static_cast<std::size_t>(state.range(0));
  drn::Rng rng(7);
  const auto placement = drn::geo::uniform_disc(stations, 1000.0, rng);
  const drn::radio::FreeSpacePropagation model;
  const auto gains =
      drn::radio::PropagationMatrix::from_placement(placement, model);
  const auto graph = drn::routing::Graph::min_energy(gains, 6.25e-6);
  for (auto _ : state) {
    auto tables = drn::routing::RoutingTables::build(graph);
    benchmark::DoNotOptimize(tables);
  }
  state.SetLabel("stations=" + std::to_string(stations));
}
BENCHMARK(BM_RoutingTablesBuild)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
