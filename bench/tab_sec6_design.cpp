// Section 6's design determination: "the proper amount of processing gain is
// determined to lie in the range of 20 to 25 dB", from the din-limited SNR
// plus a 5 dB detection margin plus a 6 dB reach margin. Also the expected-
// neighbour arithmetic that motivates the 2x reach.
#include <iostream>

#include "analysis/capacity.hpp"
#include "analysis/table.hpp"
#include "geo/placement.hpp"
#include "radio/noise_growth.hpp"

int main() {
  using drn::analysis::Table;

  std::cout << "Section 6 — processing-gain budget\n\n";
  Table t({"M", "eta", "SNR dB (Eq.15)", "+detect dB", "+range dB",
           "required gain dB"});
  for (std::size_t m :
       {std::size_t{1000000}, std::size_t{100000000}, std::size_t{1000000000}}) {
    for (double eta : {0.25, 0.5, 1.0}) {
      const auto b = drn::analysis::processing_gain_budget(m, eta);
      t.add_row({Table::num(std::uint64_t(m)), Table::num(eta, 2),
                 Table::num(b.snr.value(), 1),
                 Table::num(b.detection_margin.value(), 0),
                 Table::num(b.range_margin.value(), 0),
                 Table::num(b.required_gain.value(), 1)});
    }
  }
  t.print(std::cout);
  std::cout << "\nPaper check: the required-gain column spans ~17-26 dB, with "
               "the paper's quoted 20-25 dB window covering the reasonable "
               "(eta >= 0.5) rows.\n\n";

  std::cout << "Expected-neighbour arithmetic (uniform density sigma):\n\n";
  Table n({"reach", "expected neighbours", "note"});
  const std::size_t m = 1000;
  const double region = 1000.0;
  const double sigma = drn::radio::disc_density(m, drn::radio::Meters{region});
  const double r0 = drn::radio::characteristic_length(sigma).value();
  n.add_row({"R0", Table::num(drn::geo::expected_neighbors(m, region, r0), 2),
             "too few for connectivity"});
  n.add_row({"2 R0",
             Table::num(drn::geo::expected_neighbors(m, region, 2.0 * r0), 2),
             "paper's choice (costs 6 dB)"});
  n.add_row({"4 R0",
             Table::num(drn::geo::expected_neighbors(m, region, 4.0 * r0), 2),
             "another 6 dB: wasteful"});
  n.print(std::cout);
  return 0;
}
