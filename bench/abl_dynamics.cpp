// Ablation: MAC robustness under network dynamics — delivery ratio and
// re-convergence time vs churn rate.
//
// For each churn rate, runs the paper's scheduled scheme against contention
// baselines (aloha, csma) on paired seeds: every MAC sees the same
// placements, traffic and dynamics timeline, so the columns are directly
// comparable. Churned stations rejoin after an exponential downtime; the
// scheme warm-reboots with stale clock models and must re-fit them from
// beacons, while the baselines reboot stateless. Re-convergence is the
// DynamicsEngine's recovery clock: seconds from a rejoin to the first
// delivered unicast hop involving the returnee.
//
// Trials fan out across a ThreadPool via runner::run_sweep, whose contract
// is byte-identical results for any job count — the emitted JSON contains
// no timing and no job count, so `--jobs 1` and `--jobs 8` outputs diff
// clean.
//
// Emits BENCH_dynamics.json (schema drn-bench-dynamics-v1).
//
//   bench_abl_dynamics [--smoke] [--out PATH] [--jobs N]
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "runner/json.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"

namespace {

using namespace drn;

struct BenchConfig {
  std::size_t stations = 60;
  double region_m = 1200.0;
  double rate_pps = 150.0;
  double duration_s = 20.0;
  double drain_s = 40.0;
  std::size_t seeds = 5;
  std::uint64_t master_seed = 20260808;
  std::vector<double> churn_rates{0.2, 0.5, 1.0};
  std::vector<runner::MacKind> macs{runner::MacKind::kScheme,
                                    runner::MacKind::kAloha,
                                    runner::MacKind::kCsma};
};

BenchConfig smoke_config() {
  BenchConfig c;
  c.stations = 20;
  c.region_m = 800.0;
  c.rate_pps = 100.0;
  c.duration_s = 3.0;
  c.drain_s = 15.0;
  c.seeds = 2;
  return c;
}

/// The sweep for one churn rate: all MACs × seeds, paired so each MAC sees
/// identical placements, traffic and dynamics timelines.
runner::SweepSpec sweep_for(const BenchConfig& c, double churn_rate) {
  runner::SweepSpec sw;
  sw.stations = {c.stations};
  sw.region_m = {c.region_m};
  sw.macs = c.macs;
  sw.rates_pps = {c.rate_pps};
  sw.seeds = c.seeds;
  sw.master_seed = c.master_seed;
  sw.paired_seeds = true;
  sw.duration_s = c.duration_s;
  sw.drain_s = c.drain_s;
  sw.base.stations = c.stations;
  sw.base.region_m = c.region_m;
  sw.base.dynamics.churn_rate_per_s = churn_rate;
  sw.base.dynamics.mean_downtime_s = 2.0;
  // Beacons keep the scheme's clock models and neighbour sets live across
  // churn (baselines ignore these fields — they carry no neighbour state).
  sw.base.net.beacon_interval_s = 0.5;
  sw.base.net.neighbor_timeout_s = 6.0;
  sw.base.net.readopt_neighbors = true;
  return sw;
}

int run(bool smoke, const std::string& out_path, unsigned jobs) {
  const BenchConfig cfg = smoke ? smoke_config() : BenchConfig{};

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << '\n';
    return 3;
  }
  runner::json::Writer w(out);
  w.begin_object();
  w.key("schema").value("drn-bench-dynamics-v1");
  w.key("smoke").value(smoke);
  w.key("stations").value(static_cast<std::uint64_t>(cfg.stations));
  w.key("region_m").value(cfg.region_m);
  w.key("rate_pps").value(cfg.rate_pps);
  w.key("duration_s").value(cfg.duration_s);
  w.key("drain_s").value(cfg.drain_s);
  w.key("seeds").value(static_cast<std::uint64_t>(cfg.seeds));
  w.key("mean_downtime_s").value(2.0);
  w.key("churn_rates_per_s").begin_array();
  for (double r : cfg.churn_rates) w.value(r);
  w.end_array();
  w.key("macs").begin_array();
  for (runner::MacKind mac : cfg.macs) w.value(runner::mac_name(mac));
  w.end_array();
  w.key("points").begin_array();

  for (double churn_rate : cfg.churn_rates) {
    const runner::SweepSpec sw = sweep_for(cfg, churn_rate);
    const runner::SweepResult result = runner::run_sweep(sw, jobs);
    // One point per MAC: aggregate the seed replicates.
    for (runner::MacKind mac : cfg.macs) {
      runner::SummaryStats delivery, recovery;
      std::uint64_t leaves = 0, joins = 0, aborted = 0, recoveries = 0;
      for (std::size_t i = 0; i < result.trials.size(); ++i) {
        if (result.trials[i].point.mac != mac) continue;
        const runner::TrialResult& r = result.results[i];
        delivery.add(r.delivery_ratio);
        if (r.recoveries > 0) recovery.add(r.median_recovery_s);
        leaves += r.station_leaves;
        joins += r.station_joins;
        aborted += r.aborted_losses;
        recoveries += r.recoveries;
      }
      w.begin_object();
      w.key("churn_rate_per_s").value(churn_rate);
      w.key("mac").value(runner::mac_name(mac));
      w.key("trials").value(delivery.count());
      w.key("delivery_ratio_mean").value(delivery.mean());
      w.key("delivery_ratio_ci95").value(delivery.ci95_half_width());
      w.key("station_leaves").value(leaves);
      w.key("station_joins").value(joins);
      w.key("aborted_losses").value(aborted);
      w.key("recoveries").value(recoveries);
      // Median re-convergence: mean over replicates of each trial's median.
      w.key("median_recovery_s")
          .value(recovery.count() > 0 ? recovery.mean() : 0.0);
      w.end_object();
      std::cerr << "churn=" << churn_rate << "/s " << runner::mac_name(mac)
                << ": delivery " << delivery.mean() << ", recoveries "
                << recoveries << ", median recovery "
                << (recovery.count() > 0 ? recovery.mean() : 0.0) << " s\n";
    }
  }

  w.end_array();
  w.end_object();
  out << '\n';
  std::cerr << "wrote " << out_path << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_dynamics.json";
  unsigned jobs = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::cerr << "usage: bench_abl_dynamics [--smoke] [--out PATH] "
                   "[--jobs N]\n";
      return 2;
    }
  }
  try {
    return run(smoke, out_path, jobs);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
