// Ablation A4 — receiver/packet design knobs:
//   (a) despreading-channel count vs Type-2 loss (Section 5: "it should not
//       be larger than the number of neighbors"), and
//   (b) packet-size fraction vs packing efficiency and delay (Section 7.2's
//       quarter-slot choice).
#include <iostream>
#include <memory>
#include <string>

#include "analysis/schedule_math.hpp"
#include "analysis/table.hpp"
#include "common.hpp"

namespace {

using drn::StationId;
using drn::analysis::Table;
namespace sim = drn::sim;

void despreading_channels() {
  std::cout << "(a) Despreading channels vs Type-2 overload\n"
               "Star topology: 6 leaves all saturating the hub.\n\n";
  Table t({"channels", "delivered", "T2 losses"});
  for (int channels : {1, 2, 4, 8}) {
    drn::radio::PropagationMatrix gains(7);
    for (StationId leaf = 1; leaf < 7; ++leaf) {
      gains.set_gain(0, leaf, drn::radio::LinearGain{1.0e-4});
      for (StationId other = static_cast<StationId>(leaf + 1); other < 7;
           ++other)
        gains.set_gain(leaf, other, drn::radio::LinearGain{2.5e-5});
    }
    auto cfg = drn::bench::multihop_config();
    cfg.max_power_w = 1.0;
    cfg.exact_clock_models = true;
    cfg.respect_third_party_windows = false;  // isolate the channel effect
    drn::Rng rng(4);
    auto net = drn::core::build_scheduled_network(
        gains, drn::bench::scheme_criterion(), cfg, rng);
    sim::SimulatorConfig sc{drn::bench::scheme_criterion()};
    sc.despreading_channels = channels;
    sim::Simulator simulator(gains, sc);
    for (StationId s = 0; s < 7; ++s)
      simulator.set_mac(s, std::move(net.macs[s]));
    // Each leaf fires a steady stream at the hub.
    for (int i = 0; i < 200; ++i) {
      for (StationId leaf = 1; leaf < 7; ++leaf) {
        sim::Packet p;
        p.source = leaf;
        p.destination = 0;
        p.size_bits = net.packet_bits;
        simulator.inject(0.001 * i, p);
      }
    }
    simulator.run_until(120.0);
    t.add_row({Table::num(std::uint64_t(channels)),
               Table::num(simulator.metrics().delivered()),
               Table::num(simulator.metrics().losses(sim::LossType::kType2))});
  }
  t.print(std::cout);
  std::cout << "\nWith channels >= the number of simultaneously-sending "
               "neighbours, Type-2 loss vanishes — the paper's argument for "
               "a handful of despreading channels (GPS-class hardware).\n\n";
}

void packet_fraction() {
  std::cout << "(b) Packet-size fraction of a slot (Section 7.2 chooses "
               "1/4)\n\n";
  Table t({"fraction", "analytic packing eff", "delivered", "mean delay (slots)"});
  for (double f : {0.125, 0.25, 0.5, 0.75}) {
    auto cfg = drn::bench::multihop_config();
    cfg.packet_fraction = f;
    cfg.exact_clock_models = true;
    auto scenario = drn::bench::make_scenario(25, 800.0, 909, cfg);
    sim::SimulatorConfig sc{drn::bench::scheme_criterion()};
    sim::Simulator simulator(scenario.gains, sc);
    const auto& m =
        drn::bench::run_scheme(scenario, simulator, 200.0, 2.0, 909, 120.0);
    t.add_row({Table::num(f, 3),
               Table::num(drn::analysis::packing_efficiency(f), 3),
               Table::num(m.delivered()),
               Table::num(m.delay().mean() / cfg.slot_s, 1)});
  }
  t.print(std::cout);
  std::cout
      << "\nSmall packets fit windows easily (but cost header overhead the "
         "model omits); large fractions struggle to fit inside guard-shrunk "
         "overlaps, inflating delay. The quarter-slot choice balances the "
         "two, as Section 7.2 argues.\n";
}

}  // namespace

int main() {
  std::cout << "Ablation A4 — receiver & packet design\n\n";
  despreading_channels();
  packet_fraction();
  return 0;
}
