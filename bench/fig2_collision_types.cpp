// Figure 2 / Section 5: the collision taxonomy. For each type we build the
// paper's micro-topology, show the loss occurring under naive random access
// (ALOHA, with the classic all-interference-is-fatal 0 dB threshold), and
// show the mechanism the paper assigns to that type eliminating it:
//   Type 1 -> spread-spectrum processing gain,
//   Type 2 -> parallel despreading channels (+ spread spectrum),
//   Type 3 -> transmit/receive scheduling.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "common.hpp"
#include "baselines/aloha.hpp"

namespace {

using drn::StationId;
using drn::analysis::Table;
namespace sim = drn::sim;
namespace radio = drn::radio;
namespace core = drn::core;

// A MAC that transmits a fixed script (times, addressee, power).
class Script final : public sim::MacProtocol {
 public:
  struct Tx {
    double start;
    StationId to;
    double power;
    double bits;
  };
  explicit Script(std::vector<Tx> txs) : txs_(std::move(txs)) {}
  void on_start(sim::MacContext& ctx) override {
    for (std::size_t i = 0; i < txs_.size(); ++i)
      ctx.set_timer(txs_[i].start, i);
  }
  void on_timer(sim::MacContext& ctx, std::uint64_t i) override {
    sim::Packet p;
    p.source = ctx.self();
    p.destination = txs_[i].to;
    p.size_bits = txs_[i].bits;
    ctx.transmit(p, txs_[i].to, txs_[i].power, ctx.now());
  }
  void on_enqueue(sim::MacContext& ctx, const sim::Packet& p,
                  StationId) override {
    ctx.drop(p);
  }

 private:
  std::vector<Tx> txs_;
};

class Idle final : public sim::MacProtocol {
 public:
  void on_enqueue(sim::MacContext& ctx, const sim::Packet& p,
                  StationId) override {
    ctx.drop(p);
  }
};

struct Outcome {
  std::uint64_t ok = 0;
  std::uint64_t t1 = 0;
  std::uint64_t t2 = 0;
  std::uint64_t t3 = 0;
};

Outcome run(const radio::PropagationMatrix& gains,
            const radio::ReceptionCriterion& crit, int channels,
            const std::vector<std::vector<Script::Tx>>& scripts) {
  sim::SimulatorConfig cfg{crit};
  cfg.thermal_noise_w = 1.0e-15;
  cfg.despreading_channels = channels;
  sim::Simulator s(gains, cfg);
  for (StationId i = 0; i < gains.size(); ++i) {
    if (scripts[i].empty())
      s.set_mac(i, std::make_unique<Idle>());
    else
      s.set_mac(i, std::make_unique<Script>(scripts[i]));
  }
  s.run_until(10.0);
  Outcome o;
  o.ok = s.metrics().hop_successes();
  o.t1 = s.metrics().losses(sim::LossType::kType1);
  o.t2 = s.metrics().losses(sim::LossType::kType2);
  o.t3 = s.metrics().losses(sim::LossType::kType3);
  return o;
}

std::string show(const Outcome& o) {
  return "ok=" + std::to_string(o.ok) + " T1=" + std::to_string(o.t1) +
         " T2=" + std::to_string(o.t2) + " T3=" + std::to_string(o.t3);
}

}  // namespace

int main() {
  std::cout << "Figure 2 / Section 5 — collision taxonomy and the mechanism "
               "that eliminates each type\n\n";
  // Narrowband (all-or-nothing-like): required SINR 0 dB.
  const radio::ReceptionCriterion narrow(
      radio::Hertz{1.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{0.0});
  // Spread spectrum: 23 dB processing gain, required SINR ~ -19.6 dB.
  const radio::ReceptionCriterion spread(
      radio::Hertz{200.0e6}, radio::BitsPerSecond{1.0e6}, radio::Decibels{5.0});

  Table t({"case", "mechanism", "narrowband outcome", "with mechanism"});

  {
    // Type 1: third-party interferer near the receiver.
    radio::PropagationMatrix m(4);
    m.set_gain(1, 0, radio::LinearGain{1.0});   // 0 -> 1 desired
    m.set_gain(1, 2, radio::LinearGain{2.0});   // 2 louder than the sender at receiver 1
    m.set_gain(3, 2, radio::LinearGain{1.0});   // 2 -> 3 its own traffic
    std::vector<std::vector<Script::Tx>> scripts(4);
    scripts[0] = {{0.000, 1, 1.0, 1.0e4}};
    scripts[2] = {{0.003, 3, 1.0, 1.0e4}};
    const auto narrow_out = run(m, narrow, 8, scripts);
    const auto spread_out = run(m, spread, 8, scripts);
    t.add_row({"Type 1 (third-party interferer)",
               "spread spectrum (20+ dB gain)", show(narrow_out),
               show(spread_out)});
  }
  {
    // Type 2: two senders address one receiver simultaneously.
    radio::PropagationMatrix m(3);
    m.set_gain(2, 0, radio::LinearGain{1.0});
    m.set_gain(2, 1, radio::LinearGain{1.0});
    m.set_gain(0, 1, radio::LinearGain{1e-9});
    std::vector<std::vector<Script::Tx>> scripts(3);
    scripts[0] = {{0.000, 2, 1.0, 1.0e4}};
    scripts[1] = {{0.001, 2, 1.0, 1.0e4}};
    const auto narrow_out = run(m, narrow, 8, scripts);
    const auto spread_out = run(m, spread, 8, scripts);
    const auto one_channel = run(m, spread, 1, scripts);
    t.add_row({"Type 2 (two senders, one receiver)",
               "multiple despreading channels", show(narrow_out),
               show(spread_out) + "  (1 channel: " + show(one_channel) + ")"});
  }
  {
    // Type 3: the receiver's own transmitter. No amount of processing gain
    // fixes this one — only scheduling does.
    radio::PropagationMatrix m(3);
    m.set_gain(1, 0, radio::LinearGain{1.0});
    m.set_gain(2, 1, radio::LinearGain{1.0});
    m.set_gain(2, 0, radio::LinearGain{1e-9});
    std::vector<std::vector<Script::Tx>> scripts(3);
    scripts[0] = {{0.000, 1, 1.0, 1.0e4}};  // 0 -> 1, 0-10 ms
    scripts[1] = {{0.004, 2, 1.0, 1.0e4}};  // 1 keys up mid-reception
    const auto narrow_out = run(m, narrow, 8, scripts);
    const auto spread_out = run(m, spread, 8, scripts);
    t.add_row({"Type 3 (receiver transmitting)", "schedule (Section 7)",
               show(narrow_out), show(spread_out) + "  <- still lost!"});
  }
  t.print(std::cout);

  std::cout << "\nScheduled access on the Type-3 topology (the Section 7 "
               "mechanism):\n\n";
  {
    // Same 3 stations, bidirectional load, but driven by ScheduledStation.
    auto cfg = drn::bench::multihop_config();
    cfg.max_power_w = 1.0;
    cfg.exact_clock_models = true;
    radio::PropagationMatrix m(3);
    m.set_gain(1, 0, radio::LinearGain{1.0e-4});
    m.set_gain(2, 1, radio::LinearGain{1.0e-4});
    m.set_gain(2, 0, radio::LinearGain{2.5e-5});
    drn::Rng rng(7);
    auto net = core::build_scheduled_network(m, spread, cfg, rng);
    sim::SimulatorConfig sc{spread};
    sim::Simulator s(m, sc);
    for (StationId i = 0; i < 3; ++i) s.set_mac(i, std::move(net.macs[i]));
    drn::Rng traffic_rng(8);
    for (const auto& inj : sim::poisson_traffic(100.0, 2.0, net.packet_bits,
                                                sim::uniform_pairs(3),
                                                traffic_rng))
      s.inject(inj.time_s, inj.packet);
    s.run_until(30.0);
    Table t2({"offered", "delivered", "T1", "T2", "T3"});
    t2.add_row({Table::num(s.metrics().offered()),
                Table::num(s.metrics().delivered()),
                Table::num(s.metrics().losses(sim::LossType::kType1)),
                Table::num(s.metrics().losses(sim::LossType::kType2)),
                Table::num(s.metrics().losses(sim::LossType::kType3))});
    t2.print(std::cout);
    std::cout << "\nAll three loss types are zero under the scheme.\n";
  }
  return 0;
}
