// Figure 3 / Section 6.2: minimum-energy routing. Reproduces
//  (a) the relay-circle criterion — sweep relay positions, compare the
//      geometric prediction to actual Dijkstra route choice;
//  (b) the centred-relay arithmetic — power /4 per hop, energy /2 total,
//      interference at a distant station D halved;
//  (c) the neighbour-count observation — "the number of routing neighbors
//      never exceeded eight" across random 100/1000-station placements.
#include <algorithm>
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "radio/noise_growth.hpp"
#include "routing/min_energy.hpp"

namespace {

using drn::StationId;
using drn::analysis::Table;
namespace geo = drn::geo;
namespace radio = drn::radio;
namespace routing = drn::routing;

void relay_criterion_sweep() {
  std::cout << "Relay-circle criterion: relay B on the perpendicular bisector "
               "of A-C (|AC| = 100 m)\n\n";
  const geo::Vec2 a{0.0, 0.0};
  const geo::Vec2 c{100.0, 0.0};
  Table t({"B offset from axis (m)", "inside circle?", "Dijkstra relays?",
           "relayed/direct energy"});
  for (double y : {0.0, 20.0, 40.0, 49.0, 50.0, 51.0, 60.0, 80.0}) {
    const geo::Vec2 b{50.0, y};
    const geo::Placement placement = {a, b, c};
    const radio::FreeSpacePropagation model;
    const auto gains = radio::PropagationMatrix::from_placement(placement, model);
    const auto graph = routing::Graph::min_energy(gains, 1.0e-12);
    const auto tree = routing::shortest_paths(graph, 0);
    const auto path = routing::extract_path(tree, 2);
    const double direct = 1.0 / gains.gain(2, 0);
    const double relayed = 1.0 / gains.gain(1, 0) + 1.0 / gains.gain(2, 1);
    t.add_row({Table::num(y, 0),
               routing::relay_inside_criterion_circle(a, b, c) ? "yes" : "no",
               path.size() == 3 ? "yes" : "no",
               Table::num(relayed / direct, 3)});
  }
  t.print(std::cout);
  std::cout << "\nThe crossover sits exactly at the circle boundary (50 m "
               "offset, where the ratio is 1.0), matching Section 6.2.\n\n";
}

void centered_relay_energy() {
  std::cout << "Centred relay arithmetic (A-B-C collinear, B at the middle, "
               "observer D far away):\n\n";
  const geo::Placement placement = {
      {0.0, 0.0}, {50.0, 0.0}, {100.0, 0.0}, {50.0, 1.0e5}};
  const radio::FreeSpacePropagation model;
  const auto gains = radio::PropagationMatrix::from_placement(placement, model);
  const std::vector<StationId> direct = {0, 2};
  const std::vector<StationId> relayed = {0, 1, 2};
  Table t({"route", "tx power per hop (rel.)", "hops",
           "interference energy at D (rel.)"});
  const double e_direct = routing::interference_energy_at(gains, direct, 3);
  const double e_relay = routing::interference_energy_at(gains, relayed, 3);
  t.add_row({"direct A->C", "1.00", "1", "1.00"});
  t.add_row({"A->B->C", "0.25", "2", Table::num(e_relay / e_direct, 3)});
  t.print(std::cout);
  std::cout << "\nPaper: power down 4x per hop, duration doubled -> total "
               "interference energy halved.\n\n";
}

void neighbor_counts() {
  std::cout << "Routing-neighbour counts over random placements (reach 2*R0, "
               "Section 6's design point):\n\n";
  Table t({"stations", "trial", "mean degree", "max degree"});
  drn::Rng rng(606);
  for (std::size_t n : {std::size_t{100}, std::size_t{1000}}) {
    for (int trial = 1; trial <= 3; ++trial) {
      const double region = 1000.0;
      const auto placement = geo::uniform_disc(n, region, rng);
      const radio::FreeSpacePropagation model;
      const auto gains =
          radio::PropagationMatrix::from_placement(placement, model);
      const double r0 =
          radio::characteristic_length(
              radio::disc_density(n, radio::Meters{region}))
              .value();
      const auto graph =
          routing::Graph::min_energy(gains, 1.0 / (4.0 * r0 * r0));
      const auto degrees = graph.degrees();
      double mean = 0.0;
      std::size_t max = 0;
      for (std::size_t d : degrees) {
        mean += static_cast<double>(d);
        max = std::max(max, d);
      }
      mean /= static_cast<double>(n);
      t.add_row({Table::num(std::uint64_t(n)),
                 Table::num(std::uint64_t(trial)), Table::num(mean, 2),
                 Table::num(std::uint64_t(max))});
    }
  }
  t.print(std::cout);
  std::cout << "\nPaper check: expected ~4 neighbours at reach 2*R0; the "
               "paper reports the per-station count never exceeded eight "
               "(maxima here sit in the same single-digit band; extreme "
               "Poisson clumps can nudge past 8).\n";
}

}  // namespace

int main() {
  std::cout << "Figure 3 / Section 6.2 — minimum-energy routing\n\n";
  relay_criterion_sweep();
  centered_relay_energy();
  neighbor_counts();
  return 0;
}
