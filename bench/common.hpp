// Shared scenario assembly for the bench binaries (mirrors the integration
// tests' helper; kept separate so bench/ has no dependency on tests/).
#pragma once

#include <memory>
#include <utility>

#include "core/network_builder.hpp"
#include "geo/placement.hpp"
#include "radio/propagation.hpp"
#include "radio/propagation_matrix.hpp"
#include "routing/dijkstra.hpp"
#include "routing/graph.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

namespace drn::bench {

/// 1 Mb/s design rate over 200 MHz spread (23 dB processing gain), 5 dB
/// detection margin — the Section 6 design point.
inline radio::ReceptionCriterion scheme_criterion() {
  return radio::ReceptionCriterion(200.0e6, 1.0e6, 5.0);
}

/// Multihop-flavoured network defaults: reach ~400 m from a 1 nW delivered
/// power target.
inline core::ScheduledNetworkConfig multihop_config() {
  core::ScheduledNetworkConfig cfg;
  cfg.target_received_w = 1.0e-9;
  cfg.max_power_w = 1.6e-4;
  cfg.exact_clock_models = false;
  cfg.max_drift_ppm = 20.0;
  cfg.rendezvous_noise_s = 1.0e-6;
  return cfg;
}

struct Scenario {
  geo::Placement placement;
  radio::PropagationMatrix gains;
  core::ScheduledNetwork net;
  routing::RoutingTables tables;
};

inline Scenario make_scenario(std::size_t stations, double region_m,
                              std::uint64_t seed,
                              core::ScheduledNetworkConfig net_cfg) {
  Rng rng(seed);
  auto placement = geo::uniform_disc(stations, region_m, rng);
  const radio::FreeSpacePropagation model;
  auto gains = radio::PropagationMatrix::from_placement(placement, model);
  Rng build_rng = rng.split(1);
  auto net =
      build_scheduled_network(gains, scheme_criterion(), net_cfg, build_rng);
  const auto graph = routing::Graph::min_energy(
      gains, net_cfg.target_received_w / net_cfg.max_power_w);
  auto tables = routing::RoutingTables::build(graph);
  return Scenario{std::move(placement), std::move(gains), std::move(net),
                  std::move(tables)};
}

/// Installs the scheme MACs + min-energy router and runs Poisson uniform-pair
/// traffic; returns the simulator for metric inspection.
inline const sim::Metrics& run_scheme(Scenario& scenario, sim::Simulator& sim,
                                      double packets_per_s, double duration_s,
                                      std::uint64_t traffic_seed,
                                      double drain_s = 60.0) {
  for (StationId s = 0; s < scenario.gains.size(); ++s)
    sim.set_mac(s, std::move(scenario.net.macs[s]));
  sim.set_router(scenario.tables.router());
  Rng rng(traffic_seed);
  for (const auto& inj : sim::poisson_traffic(
           packets_per_s, duration_s, scenario.net.packet_bits,
           sim::uniform_pairs(scenario.gains.size()), rng))
    sim.inject(inj.time_s, inj.packet);
  sim.run_until(duration_s + drain_s);
  return sim.metrics();
}

}  // namespace drn::bench
