// Shared scenario assembly for the bench binaries — now a thin façade over
// the runner subsystem (src/runner/scenario.hpp), which owns the single
// definition of scenario assembly for benches, tools and sweeps alike.
#pragma once

#include "radio/propagation.hpp"  // transitive deps of the old header,
#include "sim/traffic.hpp"        // which bench binaries still rely on
#include "runner/scenario.hpp"

namespace drn::bench {

using runner::Scenario;
using runner::make_scenario;
using runner::multihop_config;
using runner::run_scheme;
using runner::scheme_criterion;

}  // namespace drn::bench
