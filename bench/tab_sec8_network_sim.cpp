// Sections 1 & 8: "Simulations of small networks (consisting of only 100 or
// 1000 stations) were used to demonstrate the effectiveness of the channel
// access scheme" — the end-to-end run. 100- and 1000-station random
// placements, noisy fitted clock models, minimum-energy multihop routing,
// Poisson traffic; versus ALOHA and CSMA baselines under the identical
// physical model (with genie acks, a bias in their favour).
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "baselines/aloha.hpp"
#include "baselines/csma.hpp"
#include "baselines/maca.hpp"
#include "common.hpp"

namespace {

using drn::StationId;
using drn::analysis::Table;
namespace sim = drn::sim;

struct Row {
  std::string mac;
  std::uint64_t offered = 0;
  double delivery = 0.0;
  std::uint64_t t1 = 0;
  std::uint64_t t2 = 0;
  std::uint64_t t3 = 0;
  double delay_ms = 0.0;
  double hops = 0.0;
  double tx_per_hop = 0.0;  // attempts / successes: 1.0 = no waste
};

Row summarize(const std::string& name, const sim::Metrics& m) {
  Row r;
  r.mac = name;
  r.offered = m.offered();
  r.delivery = m.delivery_ratio();
  r.t1 = m.losses(sim::LossType::kType1);
  r.t2 = m.losses(sim::LossType::kType2);
  r.t3 = m.losses(sim::LossType::kType3);
  r.delay_ms = m.delivered() > 0 ? m.delay().mean() * 1000.0 : 0.0;
  r.hops = m.delivered() > 0 ? m.hops().mean() : 0.0;
  r.tx_per_hop = m.hop_successes() > 0
                     ? static_cast<double>(m.hop_attempts()) /
                           static_cast<double>(m.hop_successes())
                     : 0.0;
  return r;
}

template <typename MakeMac>
Row run_baseline(const std::string& name, const drn::bench::Scenario& scenario,
                 MakeMac&& make_mac, double rate, double duration,
                 std::uint64_t seed) {
  sim::SimulatorConfig sc{drn::bench::scheme_criterion()};
  sim::Simulator simulator(scenario.gains, sc);
  for (StationId s = 0; s < scenario.gains.size(); ++s)
    simulator.set_mac(s, make_mac());
  simulator.set_router(scenario.tables.router());
  drn::Rng rng(seed);
  for (const auto& inj : sim::poisson_traffic(
           rate, duration, scenario.net.packet_bits,
           sim::uniform_pairs(scenario.gains.size()), rng))
    simulator.inject(inj.time_s, inj.packet);
  simulator.run_until(duration + 60.0);
  return summarize(name, simulator.metrics());
}

void print_rows(const std::vector<Row>& rows) {
  Table t({"MAC", "offered", "delivery", "T1", "T2", "T3", "tx/hop",
           "mean delay ms", "mean hops"});
  for (const auto& r : rows) {
    t.add_row({r.mac, Table::num(r.offered), Table::num(r.delivery, 4),
               Table::num(r.t1), Table::num(r.t2), Table::num(r.t3),
               Table::num(r.tx_per_hop, 3), Table::num(r.delay_ms, 1),
               Table::num(r.hops, 2)});
  }
  t.print(std::cout);
}

void network_run(std::size_t stations, double region, double rate,
                 double duration, std::uint64_t seed) {
  std::cout << stations << "-station network (" << region
            << " m radius, Poisson " << rate << " pkt/s aggregate, "
            << duration << " s):\n\n";

  std::vector<Row> rows;
  {
    auto scenario =
        drn::bench::make_scenario(stations, region, seed,
                                  drn::bench::multihop_config());
    sim::SimulatorConfig sc{drn::bench::scheme_criterion()};
    sim::Simulator simulator(scenario.gains, sc);
    const auto& m = drn::bench::run_scheme(scenario, simulator, rate,
                                           duration, seed, 120.0);
    rows.push_back(summarize("scheduled scheme", m));
  }
  drn::baselines::ContentionConfig cc;
  cc.power_w = 1.0e-4;
  cc.max_retries = 6;
  cc.backoff_mean_s = 0.01;
  {
    auto scenario =
        drn::bench::make_scenario(stations, region, seed,
                                  drn::bench::multihop_config());
    rows.push_back(run_baseline(
        "pure ALOHA (genie ack)", scenario,
        [&] { return std::make_unique<drn::baselines::PureAloha>(cc); }, rate,
        duration, seed));
  }
  {
    auto scenario =
        drn::bench::make_scenario(stations, region, seed,
                                  drn::bench::multihop_config());
    rows.push_back(run_baseline(
        "CSMA (genie ack)", scenario,
        [&] { return std::make_unique<drn::baselines::CsmaMac>(cc, 2.5e-9); },
        rate, duration, seed));
  }
  {
    auto scenario =
        drn::bench::make_scenario(stations, region, seed,
                                  drn::bench::multihop_config());
    drn::baselines::MacaConfig mc;
    mc.power_w = 1.0e-4;
    mc.max_retries = 6;
    mc.backoff_mean_s = 0.01;
    rows.push_back(run_baseline(
        "MACA (RTS/CTS, no genie)", scenario,
        [&] { return std::make_unique<drn::baselines::MacaMac>(mc); }, rate,
        duration, seed));
  }
  print_rows(rows);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Section 8 — network simulations (scheme vs prior-work MACs, "
               "identical SINR physics)\n\n";
  network_run(100, 1600.0, 400.0, 2.0, 606);
  network_run(1000, 5000.0, 1000.0, 1.0, 707);
  std::cout << "Expected shape (paper): the scheme shows ZERO collision "
               "losses (T1=T2=T3=0) and delivers everything routable; the "
               "random-access baselines lose packets to all three collision "
               "types as load concentrates. tx/hop = 1.000 is the paper's "
               "'single transmission per hop' claim; the baselines only "
               "reach full delivery by burning genie-acknowledged retries "
               "(tx/hop > 1). MACA runs withOUT any genie — its RTS/CTS "
               "handshake is real airtime under the same physics — and "
               "without link-layer ACKs (original MACA) it simply loses "
               "data frames that die mid-air, which is why MACAW later "
               "added them.\n";
  return 0;
}
