// Sections 1 & 8: "Simulations of small networks (consisting of only 100 or
// 1000 stations) were used to demonstrate the effectiveness of the channel
// access scheme" — the end-to-end run. 100- and 1000-station random
// placements, noisy fitted clock models, minimum-energy multihop routing,
// Poisson traffic; versus ALOHA and CSMA baselines under the identical
// physical model (with genie acks, a bias in their favour).
//
// Runs through the runner subsystem: the four MACs form one sweep whose
// trials execute in parallel across hardware threads — results are
// bit-identical to a serial run (see DESIGN.md, runner determinism).
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "runner/sweep.hpp"
#include "runner/thread_pool.hpp"

namespace {

using drn::analysis::Table;
namespace runner = drn::runner;

std::string mac_label(runner::MacKind mac) {
  switch (mac) {
    case runner::MacKind::kScheme: return "scheduled scheme";
    case runner::MacKind::kAloha: return "pure ALOHA (genie ack)";
    case runner::MacKind::kCsma: return "CSMA (genie ack)";
    case runner::MacKind::kMaca: return "MACA (RTS/CTS, no genie)";
    default: return std::string(runner::mac_name(mac));
  }
}

void network_run(std::size_t stations, double region, double rate,
                 double duration, std::uint64_t seed) {
  std::cout << stations << "-station network (" << region
            << " m radius, Poisson " << rate << " pkt/s aggregate, "
            << duration << " s):\n\n";

  runner::SweepSpec spec;
  spec.stations = {stations};
  spec.region_m = {region};
  spec.macs = {runner::MacKind::kScheme, runner::MacKind::kAloha,
               runner::MacKind::kCsma, runner::MacKind::kMaca};
  spec.rates_pps = {rate};
  spec.seeds = 1;
  spec.master_seed = seed;
  spec.paired_seeds = true;  // all four MACs on the identical placement
  spec.duration_s = duration;
  spec.drain_s = 120.0;

  const auto result =
      runner::run_sweep(spec, runner::ThreadPool::hardware_jobs());

  Table t({"MAC", "offered", "delivery", "T1", "T2", "T3", "tx/hop",
           "mean delay ms", "mean hops"});
  for (std::size_t i = 0; i < result.trials.size(); ++i) {
    const auto& r = result.results[i];
    t.add_row({mac_label(result.trials[i].point.mac), Table::num(r.offered),
               Table::num(r.delivery_ratio, 4), Table::num(r.type1_losses),
               Table::num(r.type2_losses), Table::num(r.type3_losses),
               Table::num(r.tx_per_hop, 3),
               Table::num(r.mean_delay_s * 1000.0, 1),
               Table::num(r.mean_hops, 2)});
  }
  t.print(std::cout);
  std::cout << "\n(" << result.trials.size() << " trials, " << result.jobs
            << " worker threads)\n\n";
}

}  // namespace

int main() {
  std::cout << "Section 8 — network simulations (scheme vs prior-work MACs, "
               "identical SINR physics)\n\n";
  network_run(100, 1600.0, 400.0, 2.0, 606);
  network_run(1000, 5000.0, 1000.0, 1.0, 707);
  std::cout << "Expected shape (paper): the scheme shows ZERO collision "
               "losses (T1=T2=T3=0) and delivers everything routable; the "
               "random-access baselines lose packets to all three collision "
               "types as load concentrates. tx/hop = 1.000 is the paper's "
               "'single transmission per hop' claim; the baselines only "
               "reach full delivery by burning genie-acknowledged retries "
               "(tx/hop > 1). MACA runs withOUT any genie — its RTS/CTS "
               "handshake is real airtime under the same physics — and "
               "without link-layer ACKs (original MACA) it simply loses "
               "data frames that die mid-air, which is why MACAW later "
               "added them.\n";
  return 0;
}
