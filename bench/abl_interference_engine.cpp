// Ablation: interference-engine throughput and footprint vs station count.
//
// Drives each engine (dense, compensated, nearfar) through an identical
// synthetic churn — a sliding window of concurrent transmissions, each
// received at the sender's nearest neighbour — at fixed station density
// (region radius grows as sqrt(M)). The dense engines pay the O(M²)
// PropagationMatrix up front and are capped at kDenseMatrixGuardM stations;
// the near/far engine builds an O(M) grid and evaluates gains lazily, so it
// also runs at station counts the dense path cannot reach.
//
// Emits BENCH_interference.json (schema drn-bench-interference-v1):
// events/sec (setup included — the matrix build IS the dense path's cost),
// RSS before/after setup and peak, and the analytic dense-matrix bytes.
//
//   bench_abl_interference_engine [--smoke] [--out PATH]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "geo/grid_index.hpp"
#include "geo/placement.hpp"
#include "radio/interference_engine.hpp"
#include "radio/propagation.hpp"
#include "runner/json.hpp"

namespace {

using namespace drn;

/// Reads a "Vm*: N kB" line from /proc/self/status; 0 where unsupported.
std::uint64_t proc_status_kb(const char* field) {
  std::ifstream status("/proc/self/status");
  if (!status) return 0;
  std::string line;
  const std::string want = std::string(field) + ":";
  while (std::getline(status, line)) {
    if (line.rfind(want, 0) != 0) continue;
    std::uint64_t kb = 0;
    if (std::sscanf(line.c_str() + want.size(), "%llu",
                    reinterpret_cast<unsigned long long*>(&kb)) == 1)
      return kb;
  }
  return 0;
}

struct RunResult {
  double setup_s = 0.0;
  double wall_s = 0.0;  // setup + churn
  std::uint64_t events = 0;
  std::uint64_t rss_before_kb = 0;
  std::uint64_t rss_after_setup_kb = 0;
  std::uint64_t peak_rss_kb = 0;
  std::uint64_t matrix_bytes = 0;  // analytic dense-matrix footprint (0 = none)
};

/// Nearest-neighbour targets for every station, via the grid (O(M log)-ish;
/// never the O(M²) brute force).
std::vector<StationId> nearest_neighbors(const geo::Placement& placement,
                                         double cell_m) {
  const geo::GridIndex grid(placement, cell_m);
  std::vector<StationId> nn(placement.size());
  for (StationId s = 0; s < placement.size(); ++s) nn[s] = grid.nearest_other(s);
  return nn;
}

RunResult churn(radio::InterferenceEngineKind kind,
                const geo::Placement& placement, double region_m,
                std::uint64_t target_events) {
  RunResult r;
  r.rss_before_kb = proc_status_kb("VmRSS");
  const auto t0 = std::chrono::steady_clock::now();

  // --- setup: this is where the dense path pays its O(M²) matrix ---
  const radio::FreeSpacePropagation model;
  std::unique_ptr<radio::InterferenceEngine> engine;
  if (kind == radio::InterferenceEngineKind::kNearFar) {
    radio::NearFarConfig nf;
    nf.cutoff = radio::Meters{400.0};  // grows no neighbours at fixed density
    engine = radio::make_nearfar_engine(
        placement, std::make_shared<radio::FreeSpacePropagation>(), nf);
  } else {
    auto gains = radio::make_dense_gains(placement, model);
    r.matrix_bytes = gains.size() * gains.size() * sizeof(double);
    engine = kind == radio::InterferenceEngineKind::kDense
                 ? radio::make_dense_engine(std::move(gains))
                 : radio::make_compensated_engine(std::move(gains));
  }
  engine->set_thermal_noise(radio::Watts{1.0e-15});
  const auto nn = nearest_neighbors(placement, region_m / 16.0);
  const auto t_setup = std::chrono::steady_clock::now();
  r.setup_s = std::chrono::duration<double>(t_setup - t0).count();
  r.rss_after_setup_kb = proc_status_kb("VmRSS");

  // --- churn: sliding window of concurrent transmissions ---
  constexpr std::size_t kWindow = 64;
  const auto noop_sender = [](radio::ReceptionHandle) {};
  const auto noop_affected = [](radio::ReceptionHandle, radio::Watts) {};
  struct Flight {
    std::uint64_t tx_id;
    radio::ReceptionHandle handle;
  };
  std::deque<Flight> on_air;
  Rng rng(1234);
  std::uint64_t next_tx = 1;
  std::uint64_t events = 0;
  double sink = 0.0;  // defeat dead-code elimination
  while (events < target_events) {
    const auto from = static_cast<StationId>(rng() % placement.size());
    const StationId rx = nn[from];
    // Deliver ~1 nW at the nearest neighbour (the paper's power control).
    const double power = 1.0e-9 / engine->gain(rx, from);
    const std::uint64_t tx = next_tx++;
    engine->transmit_started(tx, from, radio::Watts{power}, noop_sender, noop_affected);
    const auto handle = engine->open_reception(tx, rx, nullptr);
    sink += engine->interference(handle).value();
    on_air.push_back({tx, handle});
    events += 2;  // start + open
    if (on_air.size() > kWindow) {
      engine->close_reception(on_air.front().handle);
      engine->transmit_ended(on_air.front().tx_id, noop_affected);
      on_air.pop_front();
      events += 2;  // close + end
    }
  }
  while (!on_air.empty()) {
    engine->close_reception(on_air.front().handle);
    engine->transmit_ended(on_air.front().tx_id, noop_affected);
    on_air.pop_front();
    events += 2;
  }
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                 .count();
  r.events = events;
  r.peak_rss_kb = proc_status_kb("VmHWM");
  if (sink < 0.0) std::cerr << "";  // keep `sink` observable
  return r;
}

int run(bool smoke, const std::string& out_path) {
  // Fixed density: the tab_sec8 100-stations-in-1600-m point, region ∝ √M.
  const double density_region_100 = 1600.0;
  std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{64, 128}
            : std::vector<std::size_t>{256, 1024, 4096, 16384};
  const std::uint64_t target_events = smoke ? 2000 : 20000;

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << '\n';
    return 3;
  }
  runner::json::Writer w(out);
  w.begin_object();
  w.key("schema").value("drn-bench-interference-v1");
  w.key("smoke").value(smoke);
  w.key("window").value(std::uint64_t{64});
  w.key("target_events").value(target_events);
  w.key("runs").begin_array();

  for (const std::size_t m : sizes) {
    const double region_m =
        density_region_100 * std::sqrt(static_cast<double>(m) / 100.0);
    Rng rng(9000 + m);
    const auto placement = geo::uniform_disc(m, region_m, rng);
    for (const auto kind : {radio::InterferenceEngineKind::kNearFar,
                            radio::InterferenceEngineKind::kCompensated,
                            radio::InterferenceEngineKind::kDense}) {
      if (kind != radio::InterferenceEngineKind::kNearFar &&
          m > radio::kDenseMatrixGuardM)
        continue;  // the dense path is capped by design
      const auto res = churn(kind, placement, region_m, target_events);
      const double events_per_s =
          res.wall_s > 0.0 ? static_cast<double>(res.events) / res.wall_s : 0.0;
      w.begin_object();
      w.key("engine").value(radio::engine_name(kind));
      w.key("stations").value(static_cast<std::uint64_t>(m));
      w.key("region_m").value(region_m);
      w.key("events").value(res.events);
      w.key("setup_s").value(res.setup_s);
      w.key("wall_s").value(res.wall_s);
      w.key("events_per_s").value(events_per_s);
      w.key("matrix_bytes").value(res.matrix_bytes);
      w.key("rss_before_kb").value(res.rss_before_kb);
      w.key("rss_after_setup_kb").value(res.rss_after_setup_kb);
      w.key("peak_rss_kb").value(res.peak_rss_kb);
      w.end_object();
      std::cerr << "M=" << m << " " << radio::engine_name(kind) << ": "
                << static_cast<std::uint64_t>(events_per_s) << " events/s ("
                << res.wall_s << " s, setup " << res.setup_s << " s)\n";
    }
  }

  w.end_array();
  w.end_object();
  out << '\n';
  std::cerr << "wrote " << out_path << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_interference.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_abl_interference_engine [--smoke] [--out PATH]\n";
      return 2;
    }
  }
  try {
    return run(smoke, out_path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
