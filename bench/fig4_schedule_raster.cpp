// Figure 4: "A sample pseudo-random schedule for 20 stations" — the raster of
// transmit/receive slots over half a second of unaligned slot grids, plus the
// paper's caption example (an instant where station 0 can reach some
// neighbours but not others) and pairwise overlap statistics.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/schedule_math.hpp"
#include "analysis/table.hpp"
#include "core/clock.hpp"
#include "core/schedule.hpp"

namespace {

using drn::analysis::Table;
using drn::core::Schedule;
using drn::core::StationClock;
using drn::units::Seconds;

constexpr double kSlot = 0.01;     // 10 ms slots
constexpr double kSpan = 0.5;      // the figure's 0.5 s window
constexpr int kStations = 20;
constexpr double kReceiveFraction = 0.3;

}  // namespace

int main() {
  std::cout << "Figure 4 — sample pseudo-random schedule for 20 stations\n"
               "(receive duty cycle p = 0.3; '#' = transmitting allowed, "
               "'.' = committed to listen; one column = 5 ms of global "
               "time; slots are unaligned because each station reckons its "
               "own clock)\n\n";

  const Schedule schedule(0xF16u, kSlot, kReceiveFraction);
  drn::Rng rng(4242);
  std::vector<StationClock> clocks;
  clocks.reserve(kStations);
  for (int s = 0; s < kStations; ++s)
    clocks.push_back(StationClock::random(rng, Seconds{1000.0}, 20.0));

  const double column_s = 0.005;
  const int columns = static_cast<int>(kSpan / column_s);
  for (int s = 0; s < kStations; ++s) {
    std::printf("station %2d  ", s);
    for (int c = 0; c < columns; ++c) {
      const double global = (c + 0.5) * column_s;
      const bool receive =
          schedule.is_receive_slot(schedule.slot_index(clocks[s].local(Seconds{global}).value()));
      std::putchar(receive ? '.' : '#');
    }
    std::putchar('\n');
  }

  // The caption's circled-instant example: at one instant, whom could
  // station 0 send to? (Needs: 0 in a transmit slot, target in a receive
  // slot.)
  const double instant = 0.25;
  std::cout << "\nAt t = " << instant << " s: station 0 is "
            << (schedule.is_receive_slot(
                    schedule.slot_index(clocks[0].local(Seconds{instant}).value()))
                    ? "listening (cannot transmit at all)"
                    : "in a transmit window")
            << "; reachable stations right now:";
  for (int s = 1; s < kStations; ++s) {
    const bool s0_tx = !schedule.is_receive_slot(
        schedule.slot_index(clocks[0].local(Seconds{instant}).value()));
    const bool s_rx = schedule.is_receive_slot(
        schedule.slot_index(clocks[s].local(Seconds{instant}).value()));
    if (s0_tx && s_rx) std::cout << ' ' << s;
  }
  std::cout << "\n\nPairwise overlap statistics over 100000 slots (fraction "
               "of time station 0 may send to station k):\n\n";
  Table t({"pair", "measured overlap", "model p(1-p)"});
  for (int s = 1; s <= 5; ++s) {
    int usable = 0;
    const int samples = 100000;
    for (int i = 0; i < samples; ++i) {
      const double g = i * kSlot / 7.3;  // stride unaligned with slots
      const bool tx = !schedule.is_receive_slot(
          schedule.slot_index(clocks[0].local(Seconds{g}).value()));
      const bool rx = schedule.is_receive_slot(
          schedule.slot_index(clocks[s].local(Seconds{g}).value()));
      if (tx && rx) ++usable;
    }
    t.add_row({"0 -> " + std::to_string(s),
               Table::num(static_cast<double>(usable) / samples, 4),
               Table::num(drn::analysis::access_probability(kReceiveFraction),
                          4)});
  }
  t.print(std::cout);
  std::cout << "\nEvery pair gets ~21% usable time — no pair starves, the "
               "property periodic schedules cannot give (bench "
               "abl_schedule_design).\n";
  return 0;
}
