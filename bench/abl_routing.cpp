// Ablation A3 — routing criterion (Section 6.2's trade-offs). Min-energy vs
// min-hop vs direct single-hop routes on the same network: interference
// energy deposited at distant observers, hop counts (store-and-forward
// delay), and delivered traffic.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "common.hpp"
#include "routing/min_energy.hpp"

namespace {

using drn::StationId;
using drn::analysis::Table;
namespace routing = drn::routing;
namespace sim = drn::sim;

struct RouteStudy {
  double mean_hops = 0.0;
  double mean_energy = 0.0;       // sum 1/gain along route
  double mean_interference = 0.0; // energy at a distant observer
  std::size_t unreachable = 0;
};

RouteStudy study(const drn::bench::Scenario& scenario,
                 const routing::RoutingTables& tables,
                 StationId observer) {
  RouteStudy out;
  std::size_t pairs = 0;
  const std::size_t n = scenario.gains.size();
  for (StationId src = 0; src < n; ++src) {
    for (StationId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      // Walk the next-hop tables.
      std::vector<StationId> path{src};
      StationId at = src;
      bool ok = true;
      while (at != dst) {
        at = tables.next_hop(at, dst);
        if (at == drn::kNoStation || path.size() > n) {
          ok = false;
          break;
        }
        path.push_back(at);
      }
      if (!ok) {
        ++out.unreachable;
        continue;
      }
      ++pairs;
      out.mean_hops += static_cast<double>(routing::hop_count(path));
      out.mean_energy += routing::path_energy_cost(scenario.gains, path);
      out.mean_interference +=
          routing::interference_energy_at(scenario.gains, path, observer,
                                          1.0e-9);
    }
  }
  if (pairs > 0) {
    out.mean_hops /= static_cast<double>(pairs);
    out.mean_energy /= static_cast<double>(pairs);
    out.mean_interference /= static_cast<double>(pairs);
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "Ablation A3 — routing criterion (Section 6.2)\n"
               "40 stations in a 1000 m disc; 'direct' uses a single max-power "
               "hop for every pair (reach permitting); observer D sits at the "
               "disc edge.\n\n";

  auto cfg = drn::bench::multihop_config();
  cfg.exact_clock_models = true;
  auto scenario = drn::bench::make_scenario(40, 1000.0, 808, cfg);
  const double min_gain = cfg.target_received_w / cfg.max_power_w;

  const auto energy_graph = routing::Graph::min_energy(scenario.gains, min_gain);
  const auto hop_graph = routing::Graph::min_hop(scenario.gains, min_gain);
  const auto energy_tables = routing::RoutingTables::build(energy_graph);
  const auto hop_tables = routing::RoutingTables::build(hop_graph);
  // "Direct": a one-edge graph per pair — emulate with a router that always
  // answers `dst`, evaluated through the same study by building a complete
  // min-energy graph with no gain floor.
  const auto direct_graph = routing::Graph::min_energy(scenario.gains, 1.0e-12);
  // Direct tables: next hop is always dst.
  // (Study needs RoutingTables; emulate directness by querying the gains.)

  // Find an edge-of-disc observer: the station farthest from the origin.
  StationId observer = 0;
  double best = 0.0;
  for (StationId s = 0; s < scenario.placement.size(); ++s) {
    const double d = drn::geo::norm_sq(scenario.placement[s]);
    if (d > best) {
      best = d;
      observer = s;
    }
  }

  const auto energy = study(scenario, energy_tables, observer);
  const auto hops = study(scenario, hop_tables, observer);

  // Direct study computed inline.
  RouteStudy direct;
  {
    std::size_t pairs = 0;
    const std::size_t n = scenario.gains.size();
    for (StationId src = 0; src < n; ++src) {
      for (StationId dst = 0; dst < n; ++dst) {
        if (src == dst) continue;
        ++pairs;
        const std::vector<StationId> path{src, dst};
        direct.mean_hops += 1.0;
        direct.mean_energy += routing::path_energy_cost(scenario.gains, path);
        direct.mean_interference += routing::interference_energy_at(
            scenario.gains, path, observer, 1.0e-9);
      }
    }
    direct.mean_hops /= static_cast<double>(pairs);
    direct.mean_energy /= static_cast<double>(pairs);
    direct.mean_interference /= static_cast<double>(pairs);
  }

  Table t({"criterion", "mean hops", "mean route energy (1/gain)",
           "interference energy at D (rel.)", "unreachable pairs"});
  const double ref = energy.mean_interference;
  t.add_row({"minimum-energy", Table::num(energy.mean_hops, 2),
             Table::num(energy.mean_energy, 0), "1.00",
             Table::num(std::uint64_t(energy.unreachable))});
  t.add_row({"minimum-hop", Table::num(hops.mean_hops, 2),
             Table::num(hops.mean_energy, 0),
             Table::num(hops.mean_interference / ref, 2),
             Table::num(std::uint64_t(hops.unreachable))});
  t.add_row({"direct single hop", Table::num(direct.mean_hops, 2),
             Table::num(direct.mean_energy, 0),
             Table::num(direct.mean_interference / ref, 2), "0"});
  t.print(std::cout);
  std::cout
      << "\nPaper check (Section 6.2): minimum-energy routes take more hops "
         "(latency trade-off the paper concedes) but radiate the least "
         "total energy, so they deposit the least interference at distant "
         "stations; direct high-power hops are dramatically worse — 'the "
         "criteria used to determine routes will need to prefer the short "
         "hops'.\n";
  (void)direct_graph;
  return 0;
}
