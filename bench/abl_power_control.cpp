// Ablation A2 — power control (Section 6.1). Constant-delivered-power
// control vs fixed transmit power on the same random network: received-SNR
// variance collapses, distant-station interference drops, and the Section 4
// analysis (constant power density) stays valid under density variation.
#include <algorithm>
#include <iostream>
#include <memory>
#include <string>

#include "analysis/table.hpp"
#include "common.hpp"
#include "radio/units.hpp"

namespace {

using drn::StationId;
using drn::analysis::Table;
namespace sim = drn::sim;

struct Outcome {
  double margin_mean_db = 0.0;
  double margin_stddev_db = 0.0;
  double delivery = 0.0;
  std::uint64_t losses = 0;
};

Outcome run(bool controlled, std::uint64_t seed) {
  auto cfg = drn::bench::multihop_config();
  cfg.exact_clock_models = true;
  auto scenario = drn::bench::make_scenario(40, 1000.0, seed, cfg);

  if (!controlled) {
    // Rebuild the MACs with fixed-power policy: every station blasts at the
    // power needed for its weakest neighbour (what it would need anyway).
    for (StationId s = 0; s < scenario.gains.size(); ++s) {
      const auto& old = *scenario.net.macs[s];
      drn::core::ScheduledStationConfig sc = old.config();
      double worst = 0.0;
      for (const auto& n : old.neighbors().all())
        worst = std::max(worst, cfg.target_received_w / n.gain);
      if (worst <= 0.0) worst = cfg.max_power_w;
      sc.power = drn::core::PowerControl::fixed(
          std::min(worst, cfg.max_power_w));
      drn::core::NeighborTable table;
      for (const auto& n : old.neighbors().all()) table.add(n);
      scenario.net.macs[s] = std::make_unique<drn::core::ScheduledStation>(
          sc, std::move(table));
    }
  }

  sim::SimulatorConfig sc{drn::bench::scheme_criterion()};
  sim::Simulator simulator(scenario.gains, sc);
  const auto& m = drn::bench::run_scheme(scenario, simulator, 300.0, 2.0,
                                         seed, 120.0);
  Outcome o;
  o.margin_mean_db = m.sinr_margin_db().mean();
  o.margin_stddev_db =
      m.sinr_margin_db().count() > 1 ? m.sinr_margin_db().stddev() : 0.0;
  o.delivery = m.delivery_ratio();
  o.losses = m.total_hop_losses();
  return o;
}

}  // namespace

int main() {
  std::cout << "Ablation A2 — power control (Section 6.1)\n"
               "Same 40-station network and traffic; 'controlled' delivers a "
               "constant 1 nW to every addressee, 'fixed' transmits at each "
               "station's max-needed power regardless of the hop.\n\n";
  Table t({"policy", "SINR margin mean dB", "margin stddev dB", "delivery",
           "collision losses"});
  for (const std::uint64_t seed : {501u, 502u}) {
    const auto on = run(true, seed);
    const auto off = run(false, seed);
    t.add_row({"controlled (seed " + std::to_string(seed) + ")",
               Table::num(on.margin_mean_db, 2),
               Table::num(on.margin_stddev_db, 2), Table::num(on.delivery, 4),
               Table::num(on.losses)});
    t.add_row({"fixed power (seed " + std::to_string(seed) + ")",
               Table::num(off.margin_mean_db, 2),
               Table::num(off.margin_stddev_db, 2),
               Table::num(off.delivery, 4), Table::num(off.losses)});
  }
  t.print(std::cout);
  std::cout
      << "\nPaper check: 'By fixing the received power level, the variance "
         "in signal-to-noise ratio can be reduced.' Controlled power shows a "
         "tighter margin spread; fixed power wastes headroom on short "
         "hops (huge margins) while raising everyone's noise floor.\n";
  return 0;
}
