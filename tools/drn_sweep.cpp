// drn_sweep — parallel, deterministic experiment sweeps over the simulator.
//
// Every figure/table in the paper is a sweep over stations, load, MAC and
// seeds; this tool exposes that as a declarative cross-product fanned across
// a thread pool, with JSON results suitable for plotting.
//
//   $ drn_sweep --stations 20:320:x2 --seeds 16 --mac scheme,aloha
//               --jobs 8 --json out.json
//   $ drn_sweep --stations 50,100 --rate 200:600:+200 --seeds 4
//
// Determinism: the results document is a pure function of the sweep spec —
// byte-identical for any --jobs value (trial RNG is derived from the trial
// index, never from scheduling). Timing (wall seconds, trials/sec) is
// emitted as a separate JSON line on stderr so results files can be diffed.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "radio/interference_engine.hpp"
#include "runner/sweep.hpp"

namespace {

using namespace drn;

struct Options {
  runner::SweepSpec spec;
  unsigned jobs = 1;
  std::string json_path;  // empty = stdout
  bool progress = true;
  bool help = false;
  /// Scheme maintenance-beacon interval; 0 = auto (0.5 s when churn or
  /// drift is on).
  double beacon_s = 0.0;
};

void print_help() {
  std::cout <<
      R"(drn_sweep - parallel deterministic experiment sweeps (Shepard, SIGCOMM '96)

usage: drn_sweep [--key value]...

Axis values accept three forms:
  a,b,c       explicit list          (e.g. --stations 50,100,200)
  lo:hi:xF    geometric, step xF     (e.g. --stations 20:320:x2 -> 20 40 80 160 320)
  lo:hi:+S    arithmetic, step +S    (e.g. --rate 200:600:+200 -> 200 400 600)

axes (cross-product; every combination is a parameter point)
  --stations AXIS       station counts              (default 40)
  --region AXIS         disc radii, metres          (default 1000)
  --mac LIST            scheme|aloha|slotted|csma|maca  (default scheme)
  --rate AXIS           aggregate Poisson pkt/s     (default 200)

replication
  --seeds N             seed replicates per point   (default 1)
  --seed N              master seed                 (default 1)
  --paired 0|1          common random numbers: replicate r of every
                        parameter point shares one seed, pairing MAC
                        comparisons on identical networks (default 0)

workload
  --duration S          offer window                (default 2)
  --drain S             extra drain time            (default 60)

interference engine
  --engine NAME         dense|compensated|nearfar applied to every trial
                        (default compensated; see drn_sim --help)
  --cutoff METERS       nearfar only: exact-summation radius (default 0 =
                        twice the trial's region radius, i.e. near-exact)
  --cell METERS         nearfar only: grid cell side (default 0 = cutoff/4)

network dynamics (applied to every trial; all off by default)
  --churn RATE          station crash rate, crashes/s  (default 0 = off)
  --churn-downtime S    mean downtime before rejoin    (default 5)
  --mobility MPS        random-waypoint speed          (default 0 = off)
  --mobility-step S     position update interval       (default 0.5)
  --drift PPMPS         clock slope half-width, ppm/s  (default 0 = off)
  --drift-step S        rate-step interval             (default 1)
  --jammers N           duty-cycled noise stations     (default 0)
  --jammer-period S     jammer burst period            (default 0.5)
  --jammer-duty F       fraction of period radiating   (default 0.2)
  --jammer-power W      jammer burst power             (default 1e-3)
  --beacon S            scheme maintenance-beacon interval; 0 = auto
                        (0.5 s when churn or drift is on)

execution
  --jobs N              worker threads (0 = all hardware threads; default 1)
  --progress 0|1        progress ticks on stderr    (default 1)
  --json PATH           results file (default: stdout)
  --audit 0|1           ride an invariant auditor along on every trial; the
                        per-trial verdict lands in the results JSON and any
                        violation fails the sweep with exit 4 (default 0)

The results JSON (schema drn-sweep-v3) is byte-identical for any --jobs
value. Timing {"jobs","trials","wall_s","trials_per_s"} prints to stderr.
)";
}

/// Parses an axis: "a,b,c" | "lo:hi:xF" | "lo:hi:+S" | single value.
std::optional<std::vector<double>> parse_axis(const std::string& text) {
  std::vector<double> out;
  try {
    if (const auto colon = text.find(':'); colon != std::string::npos) {
      const auto colon2 = text.find(':', colon + 1);
      if (colon2 == std::string::npos || colon2 + 1 >= text.size())
        return std::nullopt;
      const double lo = std::stod(text.substr(0, colon));
      const double hi = std::stod(text.substr(colon + 1, colon2 - colon - 1));
      const char kind = text[colon2 + 1];
      const double step = std::stod(text.substr(colon2 + 2));
      if (lo <= 0 && kind == 'x') return std::nullopt;
      if (kind == 'x' && step <= 1.0) return std::nullopt;
      if (kind == '+' && step <= 0.0) return std::nullopt;
      // Tiny epsilon so "20:320:x2" includes 320 despite rounding.
      for (double v = lo; v <= hi * (1.0 + 1e-12);
           v = (kind == 'x') ? v * step : v + step) {
        out.push_back(v);
        if (out.size() > 100000) return std::nullopt;
      }
      if (kind != 'x' && kind != '+') return std::nullopt;
    } else {
      std::size_t pos = 0;
      while (pos <= text.size()) {
        const auto comma = text.find(',', pos);
        const auto piece = text.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (piece.empty()) return std::nullopt;
        out.push_back(std::stod(piece));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    }
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (out.empty()) return std::nullopt;
  return out;
}

std::optional<std::vector<std::size_t>> parse_count_axis(
    const std::string& text) {
  const auto vals = parse_axis(text);
  if (!vals) return std::nullopt;
  std::vector<std::size_t> out;
  for (double v : *vals) {
    if (v < 1.0) return std::nullopt;
    out.push_back(static_cast<std::size_t>(v + 0.5));
  }
  return out;
}

std::optional<std::vector<runner::MacKind>> parse_mac_list(
    const std::string& text) {
  std::vector<runner::MacKind> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto comma = text.find(',', pos);
    const auto piece = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const auto mac = runner::parse_mac(piece);
    if (!mac) return std::nullopt;
    out.push_back(*mac);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) return std::nullopt;
  return out;
}

bool parse(int argc, char** argv, Options& opt) {
  std::map<std::string, std::string> kv;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key == "--help" || key == "-h") {
      opt.help = true;
      return true;
    }
    if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
      std::cerr << "bad argument: " << key << " (try --help)\n";
      return false;
    }
    kv[key.substr(2)] = argv[++i];
  }
  auto fail = [](const std::string& name, const std::string& v) {
    std::cerr << "bad --" << name << " value: " << v << " (try --help)\n";
    return false;
  };
  if (auto it = kv.find("stations"); it != kv.end()) {
    auto axis = parse_count_axis(it->second);
    if (!axis) return fail("stations", it->second);
    opt.spec.stations = std::move(*axis);
    kv.erase(it);
  }
  if (auto it = kv.find("region"); it != kv.end()) {
    auto axis = parse_axis(it->second);
    if (!axis) return fail("region", it->second);
    opt.spec.region_m = std::move(*axis);
    kv.erase(it);
  }
  if (auto it = kv.find("mac"); it != kv.end()) {
    auto macs = parse_mac_list(it->second);
    if (!macs) return fail("mac", it->second);
    opt.spec.macs = std::move(*macs);
    kv.erase(it);
  }
  if (auto it = kv.find("rate"); it != kv.end()) {
    auto axis = parse_axis(it->second);
    if (!axis) return fail("rate", it->second);
    opt.spec.rates_pps = std::move(*axis);
    kv.erase(it);
  }
  try {
    if (auto it = kv.find("seeds"); it != kv.end()) {
      opt.spec.seeds = std::stoull(it->second);
      kv.erase(it);
    }
    if (auto it = kv.find("seed"); it != kv.end()) {
      opt.spec.master_seed = std::stoull(it->second);
      kv.erase(it);
    }
    if (auto it = kv.find("duration"); it != kv.end()) {
      opt.spec.duration_s = std::stod(it->second);
      kv.erase(it);
    }
    if (auto it = kv.find("drain"); it != kv.end()) {
      opt.spec.drain_s = std::stod(it->second);
      kv.erase(it);
    }
    if (auto it = kv.find("jobs"); it != kv.end()) {
      opt.jobs = static_cast<unsigned>(std::stoul(it->second));
      kv.erase(it);
    }
    if (auto it = kv.find("paired"); it != kv.end()) {
      opt.spec.paired_seeds = it->second != "0";
      kv.erase(it);
    }
    if (auto it = kv.find("progress"); it != kv.end()) {
      opt.progress = it->second != "0";
      kv.erase(it);
    }
    if (auto it = kv.find("engine"); it != kv.end()) {
      const auto kind = drn::radio::parse_engine(it->second);
      if (!kind) {
        std::cerr << "unknown --engine " << it->second << " (try --help)\n";
        return false;
      }
      opt.spec.base.engine = *kind;
      kv.erase(it);
    }
    if (auto it = kv.find("cutoff"); it != kv.end()) {
      opt.spec.base.engine_cutoff_m = std::stod(it->second);
      kv.erase(it);
    }
    if (auto it = kv.find("cell"); it != kv.end()) {
      opt.spec.base.engine_cell_m = std::stod(it->second);
      kv.erase(it);
    }
    const bool jammer_knobs = kv.count("jammer-period") > 0 ||
                              kv.count("jammer-duty") > 0 ||
                              kv.count("jammer-power") > 0;
    auto num = [&](const char* name, double& out) {
      if (auto it = kv.find(name); it != kv.end()) {
        out = std::stod(it->second);
        kv.erase(it);
      }
    };
    auto& dyn = opt.spec.base.dynamics;
    num("churn", dyn.churn_rate_per_s);
    num("churn-downtime", dyn.mean_downtime_s);
    num("mobility", dyn.mobility_speed_mps);
    num("mobility-step", dyn.mobility_step_s);
    num("drift", dyn.drift_ppm_per_s);
    num("drift-step", dyn.drift_step_s);
    if (auto it = kv.find("jammers"); it != kv.end()) {
      dyn.jammer.count = std::stoull(it->second);
      kv.erase(it);
    }
    num("jammer-period", dyn.jammer.period_s);
    num("jammer-duty", dyn.jammer.duty);
    num("jammer-power", dyn.jammer.power_w);
    num("beacon", opt.beacon_s);
    if (dyn.churn_rate_per_s < 0.0 || dyn.mobility_speed_mps < 0.0 ||
        dyn.drift_ppm_per_s < 0.0) {
      std::cerr << "--churn/--mobility/--drift rates must be >= 0\n";
      return false;
    }
    if (dyn.churn_enabled() && dyn.mean_downtime_s <= 0.0) {
      std::cerr << "--churn-downtime must be > 0 when --churn is on\n";
      return false;
    }
    if (dyn.mobility_enabled() && dyn.mobility_step_s <= 0.0) {
      std::cerr << "--mobility-step must be > 0 when --mobility is on\n";
      return false;
    }
    if (dyn.drift_enabled() && dyn.drift_step_s <= 0.0) {
      std::cerr << "--drift-step must be > 0 when --drift is on\n";
      return false;
    }
    if (dyn.jammer.count == 0 && jammer_knobs) {
      std::cerr << "--jammer-* tune the jammers; combine them with "
                   "--jammers N\n";
      return false;
    }
    if (dyn.jammer.count > 0 &&
        (dyn.jammer.period_s <= 0.0 || dyn.jammer.duty <= 0.0 ||
         dyn.jammer.duty > 1.0 || dyn.jammer.power_w <= 0.0)) {
      std::cerr << "--jammer-period/--jammer-power must be > 0 and "
                   "--jammer-duty in (0, 1]\n";
      return false;
    }
    if (auto it = kv.find("audit"); it != kv.end()) {
      if (it->second != "0" && it->second != "1") {
        std::cerr << "bad --audit value: " << it->second
                  << " (want 0 or 1)\n";
        return false;
      }
      opt.spec.base.audit = it->second == "1";
      kv.erase(it);
    }
  } catch (const std::exception&) {
    std::cerr << "bad numeric argument (try --help)\n";
    return false;
  }
  if (opt.spec.seeds == 0) {
    std::cerr << "--seeds must be >= 1\n";
    return false;
  }
  if ((opt.spec.base.engine_cutoff_m > 0.0 ||
       opt.spec.base.engine_cell_m > 0.0) &&
      opt.spec.base.engine != drn::radio::InterferenceEngineKind::kNearFar) {
    std::cerr << "--cutoff/--cell tune the near/far engine; "
                 "combine them with --engine nearfar\n";
    return false;
  }
  if (auto it = kv.find("json"); it != kv.end()) {
    opt.json_path = it->second;
    kv.erase(it);
  }
  if (!kv.empty()) {
    std::cerr << "unknown option: --" << kv.begin()->first << " (try --help)\n";
    return false;
  }
  // Under churn or drift the scheme needs maintenance beacons to evict
  // ghosts, re-adopt returnees and re-fit drifting clocks.
  const auto& dyn = opt.spec.base.dynamics;
  const bool scheme_in_sweep =
      std::find(opt.spec.macs.begin(), opt.spec.macs.end(),
                runner::MacKind::kScheme) != opt.spec.macs.end();
  if (scheme_in_sweep &&
      (dyn.churn_enabled() || dyn.drift_enabled() || opt.beacon_s > 0.0)) {
    auto& net = opt.spec.base.net;
    net.beacon_interval_s = opt.beacon_s > 0.0 ? opt.beacon_s : 0.5;
    if (dyn.churn_enabled()) {
      net.neighbor_timeout_s = 12.0 * net.beacon_interval_s;
      net.readopt_neighbors = true;
    }
  }
  return true;
}

int run(const Options& opt) {
  const auto total = opt.spec.trial_count();
  std::function<void(std::size_t, std::size_t)> progress;
  if (opt.progress) {
    progress = [](std::size_t done, std::size_t n) {
      // \r progress tick; worker threads interleave at worst harmlessly.
      std::cerr << "\rdrn_sweep: " << done << "/" << n << " trials" << std::flush;
    };
  }
  const auto result = runner::run_sweep(opt.spec, opt.jobs, progress);
  if (opt.progress) std::cerr << '\n';

  if (opt.json_path.empty() || opt.json_path == "-") {
    runner::write_results_json(std::cout, opt.spec, result);
  } else {
    std::ofstream out(opt.json_path);
    if (!out) {
      std::cerr << "cannot write " << opt.json_path << '\n';
      return 3;
    }
    runner::write_results_json(out, opt.spec, result);
    std::cerr << "results (" << total << " trials) written to "
              << opt.json_path << '\n';
  }
  runner::write_timing_json(std::cerr, result);

  if (opt.spec.base.audit) {
    std::uint64_t violations = 0;
    for (const auto& r : result.results) violations += r.audit_violations;
    if (violations > 0) {
      std::cerr << "drn_sweep: invariant audit found " << violations
                << " violations across " << total << " trials\n";
      return 4;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return 2;
  if (opt.help) {
    print_help();
    return 0;
  }
  try {
    return run(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
