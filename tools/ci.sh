#!/usr/bin/env bash
# CI driver. Stages:
#
#   1. lint          tools/drn_lint.py (determinism + hygiene rules)
#   2. format        clang-format --dry-run over src/bench/tools/tests
#   3. build + test  default config
#   4. bench smoke   interference-engine and dynamics ablations in --smoke
#                    mode; the JSON they emit is schema-checked when python3
#                    is present
#   5. clang-tidy    over src/ and tools/ (needs stage 3's compile commands)
#   6. build + test  once per sanitizer config (default: tsan, then
#                    asan+ubsan)
#
# Stages 1, 3 and 5 fail the build on any finding. Stages 2 and 4 also fail
# on findings, but are skipped with a notice when the host has no
# clang-format/clang-tidy (the baked toolchain is gcc-only); the configs are
# checked in so any host that has the tools enforces them.
#
#   tools/ci.sh                # everything
#   DRN_CI_SANITIZERS="thread" tools/ci.sh      # trim the matrix
#
# Each config builds into build-ci[-<sanitizer>] so a developer's ./build
# tree is left alone.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"
sanitizers="${DRN_CI_SANITIZERS:-thread address,undefined}"

# Uninstrumented-libstdc++ false positives (see tools/tsan.supp).
export TSAN_OPTIONS="suppressions=$(pwd)/tools/tsan.supp ${TSAN_OPTIONS:-}"

echo "==== stage: lint ===="
if command -v python3 >/dev/null 2>&1; then
  python3 tools/drn_lint.py
else
  echo "lint SKIPPED: no python3 on this host"
fi

echo "==== stage: format check ===="
if command -v clang-format >/dev/null 2>&1; then
  find src bench tools tests \( -name '*.cpp' -o -name '*.hpp' \) -print0 |
    xargs -0 clang-format --dry-run -Werror
else
  echo "format check SKIPPED: no clang-format on this host"
fi

run_config() {
  local dir="$1" sanitize="$2"
  echo "==== config: ${dir} (DRN_SANITIZE='${sanitize}') ===="
  cmake -B "${dir}" -S . -DDRN_SANITIZE="${sanitize}" -DDRN_WERROR=ON \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  cmake --build "${dir}" -j "${jobs}"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_config build-ci ""

echo "==== stage: bench smoke ===="
bench_json="build-ci/BENCH_interference.json"
./build-ci/bench/bench_abl_interference_engine --smoke --out "${bench_json}"
if command -v python3 >/dev/null 2>&1; then
  python3 - "${bench_json}" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "drn-bench-interference-v1", doc.get("schema")
assert doc["smoke"] is True
runs = doc["runs"]
assert runs, "no benchmark runs recorded"
for run in runs:
    assert run["events"] >= doc["target_events"], run
    assert run["events_per_s"] > 0, run
engines = {run["engine"] for run in runs}
assert engines == {"dense", "compensated", "nearfar"}, engines
print(f"bench smoke OK: {len(runs)} runs, engines {sorted(engines)}")
PY
else
  echo "bench schema check SKIPPED: no python3 on this host"
fi

dyn_json="build-ci/BENCH_dynamics.json"
./build-ci/bench/bench_abl_dynamics --smoke --out "${dyn_json}"
if command -v python3 >/dev/null 2>&1; then
  python3 - "${dyn_json}" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "drn-bench-dynamics-v1", doc.get("schema")
assert doc["smoke"] is True
assert len(doc["churn_rates_per_s"]) >= 3, doc["churn_rates_per_s"]
macs = set(doc["macs"])
assert "scheme" in macs and len(macs) >= 3, macs
points = doc["points"]
assert len(points) == len(doc["churn_rates_per_s"]) * len(doc["macs"]), points
for p in points:
    assert p["trials"] == doc["seeds"], p
    assert 0.0 <= p["delivery_ratio_mean"] <= 1.0, p
    assert p["station_joins"] <= p["station_leaves"], p
assert any(p["recoveries"] > 0 for p in points), "no recovery ever measured"
print(f"dynamics bench smoke OK: {len(points)} points, macs {sorted(macs)}")
PY
else
  echo "dynamics bench schema check SKIPPED: no python3 on this host"
fi

echo "==== stage: clang-tidy ===="
if command -v clang-tidy >/dev/null 2>&1; then
  find src tools -name '*.cpp' -print0 |
    xargs -0 -P "${jobs}" -n 8 clang-tidy -p build-ci --quiet
else
  echo "clang-tidy SKIPPED: no clang-tidy on this host"
fi

for s in ${sanitizers}; do
  # "address,undefined" -> directory suffix "address-undefined"
  run_config "build-ci-${s//,/-}" "${s}"
done

echo "==== all stages passed ===="
