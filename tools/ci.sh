#!/usr/bin/env bash
# CI driver: build + ctest under the default config, then again under
# ThreadSanitizer (exercising the runner's thread pool). Usage:
#
#   tools/ci.sh                # default + tsan
#   DRN_CI_SANITIZERS="thread address,undefined" tools/ci.sh
#
# Each config builds into build-ci[-<sanitizer>] so a developer's ./build
# tree is left alone.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"
sanitizers="${DRN_CI_SANITIZERS:-thread}"

# Uninstrumented-libstdc++ false positives (see tools/tsan.supp).
export TSAN_OPTIONS="suppressions=$(pwd)/tools/tsan.supp ${TSAN_OPTIONS:-}"

run_config() {
  local dir="$1" sanitize="$2"
  echo "==== config: ${dir} (DRN_SANITIZE='${sanitize}') ===="
  cmake -B "${dir}" -S . -DDRN_SANITIZE="${sanitize}" -DDRN_WERROR=ON
  cmake --build "${dir}" -j "${jobs}"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_config build-ci ""
for s in ${sanitizers}; do
  # "address,undefined" -> directory suffix "address-undefined"
  run_config "build-ci-${s//,/-}" "${s}"
done

echo "==== all configs passed ===="
