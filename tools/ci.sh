#!/usr/bin/env bash
# CI driver. Stages:
#
#   1. lint          tools/drn_lint.py (determinism + hygiene rules and the
#                    layer-boundary architecture rule, regex mode) plus the
#                    linter's own unit tests
#   2. AST lint      tools/drn_lint.py --mode ast, when the libclang python
#                    bindings import; skipped with a notice otherwise (the
#                    layer-boundary rule is include-textual, so both modes
#                    enforce it identically)
#   3. format        clang-format --dry-run over src/bench/tools/tests
#   4. build + test  default config
#   5. negative-compile  replay of the tests/static/ probes by name
#   6. bench smoke   interference-engine, dynamics and event-core ablations
#                    in --smoke mode; the JSON they emit is schema-checked
#                    when python3 is present
#   7. clang-tidy    over src/ and tools/ (needs stage 4's compile commands)
#   8. build + test  once per sanitizer config (default: tsan, then
#                    asan+ubsan)
#
# Stages 1, 4 and 7 fail the build on any finding. The others also fail on
# findings, but are skipped with a notice when the host lacks the tool
# (libclang / clang-format / clang-tidy — the baked toolchain is gcc-only);
# the configs are checked in so any host that has the tools enforces them.
#
#   tools/ci.sh                # everything
#   DRN_CI_SANITIZERS="thread" tools/ci.sh      # trim the matrix
#
# Each config builds into build-ci[-<sanitizer>] so a developer's ./build
# tree is left alone.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"
sanitizers="${DRN_CI_SANITIZERS:-thread address,undefined}"

# Uninstrumented-libstdc++ false positives (see tools/tsan.supp).
export TSAN_OPTIONS="suppressions=$(pwd)/tools/tsan.supp ${TSAN_OPTIONS:-}"

echo "==== stage: lint ===="
if command -v python3 >/dev/null 2>&1; then
  python3 tools/drn_lint.py --mode regex
  python3 tools/drn_lint_test.py
else
  echo "lint SKIPPED: no python3 on this host"
fi

echo "==== stage: lint (AST mode) ===="
if python3 -c "import clang.cindex" >/dev/null 2>&1; then
  python3 tools/drn_lint.py --mode ast
else
  echo "AST lint SKIPPED: libclang python bindings not available"
fi

echo "==== stage: format check ===="
if command -v clang-format >/dev/null 2>&1; then
  find src bench tools tests \( -name '*.cpp' -o -name '*.hpp' \) -print0 |
    xargs -0 clang-format --dry-run -Werror
else
  echo "format check SKIPPED: no clang-format on this host"
fi

run_config() {
  local dir="$1" sanitize="$2"
  echo "==== config: ${dir} (DRN_SANITIZE='${sanitize}') ===="
  cmake -B "${dir}" -S . -DDRN_SANITIZE="${sanitize}" -DDRN_WERROR=ON \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  cmake --build "${dir}" -j "${jobs}"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_config build-ci ""

echo "==== stage: negative-compile suite ===="
# The unit layer's "does not compile" contract (tests/static/): ill-formed
# probes must be rejected and the well-formed meta-probe accepted. These ran
# inside the full ctest pass above; replay them by name so a regression is
# impossible to miss in the log.
ctest --test-dir build-ci -R '^static_units_' --output-on-failure

echo "==== stage: bench smoke ===="
bench_json="build-ci/BENCH_interference.json"
./build-ci/bench/bench_abl_interference_engine --smoke --out "${bench_json}"
if command -v python3 >/dev/null 2>&1; then
  python3 - "${bench_json}" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "drn-bench-interference-v1", doc.get("schema")
assert doc["smoke"] is True
runs = doc["runs"]
assert runs, "no benchmark runs recorded"
for run in runs:
    assert run["events"] >= doc["target_events"], run
    assert run["events_per_s"] > 0, run
engines = {run["engine"] for run in runs}
assert engines == {"dense", "compensated", "nearfar"}, engines
print(f"bench smoke OK: {len(runs)} runs, engines {sorted(engines)}")
PY
else
  echo "bench schema check SKIPPED: no python3 on this host"
fi

dyn_json="build-ci/BENCH_dynamics.json"
./build-ci/bench/bench_abl_dynamics --smoke --out "${dyn_json}"
if command -v python3 >/dev/null 2>&1; then
  python3 - "${dyn_json}" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "drn-bench-dynamics-v1", doc.get("schema")
assert doc["smoke"] is True
assert len(doc["churn_rates_per_s"]) >= 3, doc["churn_rates_per_s"]
macs = set(doc["macs"])
assert "scheme" in macs and len(macs) >= 3, macs
points = doc["points"]
assert len(points) == len(doc["churn_rates_per_s"]) * len(doc["macs"]), points
for p in points:
    assert p["trials"] == doc["seeds"], p
    assert 0.0 <= p["delivery_ratio_mean"] <= 1.0, p
    assert p["station_joins"] <= p["station_leaves"], p
assert any(p["recoveries"] > 0 for p in points), "no recovery ever measured"
print(f"dynamics bench smoke OK: {len(points)} points, macs {sorted(macs)}")
PY
else
  echo "dynamics bench schema check SKIPPED: no python3 on this host"
fi

core_json="build-ci/BENCH_core.json"
./build-ci/bench/bench_abl_event_core --smoke --out "${core_json}"
if command -v python3 >/dev/null 2>&1; then
  python3 - "${core_json}" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "drn-bench-core-v1", doc.get("schema")
assert doc["smoke"] is True
cells = doc["cells"]
assert cells, "no benchmark cells recorded"
# Full grid: every (stations, mac, churn) combination exactly once.
seen = {(c["stations"], c["mac"], c["churn"]) for c in cells}
assert len(seen) == len(cells), "duplicate cells"
stations = {c["stations"] for c in cells}
assert len(stations) >= 2, stations
assert {c["mac"] for c in cells} == {"scheme", "aloha"}
assert {c["churn"] for c in cells} == {False, True}
for c in cells:
    assert c["events_processed"] > 0, c
    assert c["events_per_s"] > 0, c
    assert c["peak_queue_bytes"] > 0, c
    assert c["wall_s"] > 0, c
print(f"event-core bench smoke OK: {len(cells)} cells, M in {sorted(stations)}")
PY
else
  echo "event-core bench schema check SKIPPED: no python3 on this host"
fi

echo "==== stage: clang-tidy ===="
if command -v clang-tidy >/dev/null 2>&1; then
  find src tools -name '*.cpp' -print0 |
    xargs -0 -P "${jobs}" -n 8 clang-tidy -p build-ci --quiet
else
  echo "clang-tidy SKIPPED: no clang-tidy on this host"
fi

for s in ${sanitizers}; do
  # "address,undefined" -> directory suffix "address-undefined"
  run_config "build-ci-${s//,/-}" "${s}"
done

echo "==== all stages passed ===="
