#!/usr/bin/env python3
"""Project lint for the drn codebase (src/, bench/, tools/).

Enforces the determinism and hygiene rules the simulator's reproducibility
depends on, none of which clang-tidy checks:

  rand            no C rand()/srand(): unseedable per-stream, breaks sweep
                  determinism.
  std-rng         no <random> engines (mt19937, default_random_engine) or
                  std::random_device: all randomness flows through drn::Rng
                  so every stream is derived from the master seed.
  wall-clock-seed no time(NULL)/system_clock-derived values: results must be
                  a pure function of the command line.
  float-eq        no ==/!= where an operand is a float literal or carries a
                  unit suffix (_s,_w,_db,_bps,_hz,_m,_pps): exact equality
                  on computed physical quantities is almost always a bug.
  pragma-once     every header starts its include guard with #pragma once.
  using-std       no `using namespace std`.
  iostream-lib    no <iostream> in library code under src/: libraries report
                  through return values and exceptions, only CLIs print.
  dense-matrix    no PropagationMatrix::from_placement in library code under
                  src/ outside radio/propagation_matrix.* and
                  radio/interference_engine.*: the O(M^2) matrix only enters
                  library code via the guarded make_dense_gains route (or the
                  near/far engine, which never builds it).
  position-state  no positions_ member access in library code under src/
                  outside dynamics/mobility.*, geo/grid_index.* and
                  radio/interference_engine.*: station position state has
                  exactly those owners; every move must flow through
                  Simulator::try_move_station so gains, spatial index and
                  in-flight receptions are updated together.
  raw-unit-param  no raw `double` parameters with a physical-unit suffix
                  (_s,_w,_db,_bps,_hz,_m) in public headers under src/radio/
                  and src/analysis/ outside the sanctioned boundary files
                  (units.*): dimensional quantities cross those APIs as the
                  strong types of common/units.hpp, not suffix-annotated
                  doubles.
  unordered-iter  no range-for over a std::unordered_{map,set} in src/sim/
                  and src/radio/: unordered iteration order varies across
                  libstdc++ versions, so any result-affecting loop over one
                  silently breaks bit-reproducibility. Iterate a sorted copy
                  or an ordered container instead.
  manual-db       no hand-rolled dB conversions (pow(10, x/10),
                  10*log10(x)) outside the units files: every dB <-> linear
                  crossing goes through Decibels::to_linear() /
                  LinearGain::to_db() (or radio::from_db/to_db at raw-double
                  boundaries) so conversion sites stay auditable.
  raw-event-copy  no by-value sim::Event outside src/sim/: the slim Event
                  header and its payload-handle union are the event core's
                  private wire format. Code elsewhere consumes the typed
                  observer structs (TxEvent/RxEvent) or MacContext hooks;
                  a stray Event copy smuggles a PacketHandle past the pool's
                  generation discipline.
  layer-boundary  the simulator's layering (DESIGN.md section 13) is
                  one-directional: src/radio/ (the physical substrate) must
                  not include sim/; src/sim/ must not include runner/ or
                  dynamics/ (drivers sit ABOVE the simulator); and the
                  medium (src/sim/medium.*) must not include sim/mac.hpp —
                  MAC hooks reach it only through RadioMedium::Client, so
                  the physical layer stays studyable with any MAC swapped
                  in above it.

Suppress a finding by appending `// drn-lint: allow(<rule>)` to the line,
which is a grep-able record that a human judged the exception sound. The
rule name is mandatory and must name a known rule: a bare `allow`, an empty
`allow()` or an unknown rule name is itself reported (bad-suppression), so a
typo can never silently disable a check.

Modes (--mode):
  regex   pure-regex analysis (default behaviour, zero dependencies).
  ast     AST-grade analysis of raw-unit-param and unordered-iter through
          libclang (python3 -c "import clang.cindex" must work); the
          remaining rules stay regex. Exits 2 if libclang is unavailable.
  auto    ast when libclang imports, regex otherwise (never fails on a
          missing dependency).

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

RULES = {
    "rand": re.compile(r"\b(?:std::)?s?rand\s*\("),
    "std-rng": re.compile(
        r"\bstd::(?:mt19937(?:_64)?|default_random_engine|minstd_rand0?"
        r"|random_device)\b"
    ),
    "wall-clock-seed": re.compile(
        r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)|\bsystem_clock\b"
    ),
    "using-std": re.compile(r"\busing\s+namespace\s+std\b"),
}

# Every rule a suppression may name; anything else is a bad-suppression.
KNOWN_RULES = frozenset(RULES) | {
    "float-eq",
    "pragma-once",
    "iostream-lib",
    "dense-matrix",
    "position-state",
    "raw-unit-param",
    "unordered-iter",
    "manual-db",
    "raw-event-copy",
    "layer-boundary",
}

# An operand that makes ==/!= a floating-point comparison: a float literal
# (1.0, .5, 1e-9) or an identifier with a physical-unit suffix.
FLOAT_OPERAND = (
    r"(?:\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+"
    r"|[A-Za-z_][\w.\->\[\]]*_(?:s|w|db|bps|hz|m|pps)\b)"
)
FLOAT_EQ = re.compile(
    rf"(?:{FLOAT_OPERAND}\s*[=!]=|[=!]=\s*{FLOAT_OPERAND})"
)
# ==/!= inside relational contexts we must not misread: exact-match guards
# against <=, >=, ->, templates are handled by requiring a bare [=!]= above.

DENSE_MATRIX = re.compile(r"\bfrom_placement\s*\(")
# The only library files allowed to touch the O(M^2) dense-matrix build.
DENSE_MATRIX_EXEMPT = ("propagation_matrix", "interference_engine")

POSITION_STATE = re.compile(r"\bpositions_\b")
# The only library files allowed to hold or touch station position state.
POSITION_STATE_EXEMPT = ("mobility", "grid_index", "interference_engine")

# A `double` PARAMETER whose name carries a unit suffix: `double foo_db,`,
# `double foo_s)` or `double foo_hz =`. A function NAMED with a suffix
# (`double margin_db() const`) is a sanctioned raw read, not a parameter, and
# is excluded by refusing a following `(`.
RAW_UNIT_PARAM = re.compile(
    r"\bdouble\s+(\w+_(?:s|w|db|bps|hz|m))\s*(?![\w(])"
)
RAW_UNIT_DIRS = ("radio", "analysis")
RAW_UNIT_EXEMPT = ("units",)

# Declarations of unordered containers, to resolve what a range-for walks.
UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)\s*[;{=(]"
)
RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*:\s*([^)]+)\)")
UNORDERED_ITER_DIRS = ("sim", "radio")

# Hand-rolled dB conversions: 10^(x/10) or 10*log10(x) (and the /20 voltage
# forms). The units files are the one sanctioned home for these formulas.
# pow(10, n) without a /10 exponent (a decade count) is not a conversion.
MANUAL_DB = re.compile(
    r"pow\s*\(\s*10(?:\.0*)?\s*,.*/\s*(?:10|20)(?:\.0*)?\s*\)"
    r"|10(?:\.0*)?\s*\*\s*(?:std::)?log10\s*\("
)
MANUAL_DB_EXEMPT = ("units",)

# A by-value `Event` declaration, parameter or return: `Event e`,
# `sim::Event pop()`. References (`Event&`), pointers and the longer-named
# observer structs (TxEvent, RxEvent) and Event* types (EventQueue,
# EventHandle, EventKind) do not match. Only src/sim/ may traffic in raw
# Events.
RAW_EVENT_COPY = re.compile(r"\b(?:sim::)?Event\s+\w+")

# Quoted project includes, for the layer-boundary rule. System includes
# (<...>) can never name a project layer.
PROJECT_INCLUDE = re.compile(r'#\s*include\s+"([^"]+)"')


def layer_boundary_reason(module: str, stem: str, include: str):
    """Why `include` violates the layering from a file in src/<module>/
    (None when it does not). Pure include-direction checks, so the rule is
    textual in both regex and AST modes."""
    if module == "radio" and include.startswith("sim/"):
        return (
            "src/radio/ is the physical substrate and must not include "
            "sim/ (the simulator sits above it)"
        )
    if module == "sim" and include.startswith(("runner/", "dynamics/")):
        return (
            "src/sim/ must not include runner/ or dynamics/ (drivers sit "
            "above the simulator and are plugged in, never reached down to)"
        )
    if module == "sim" and stem == "medium" and (
        include == "sim/mac.hpp" or include.endswith("/mac.hpp")
    ):
        return (
            "the medium is MAC-free by design: MAC hooks reach it only "
            "through RadioMedium::Client"
        )
    return None


ALLOW = re.compile(r"//\s*drn-lint:\s*allow\s*(?:\(([^)]*)\))?")
COMMENT = re.compile(r"//.*$")
STRING = re.compile(r'"(?:[^"\\]|\\.)*"' + r"|'(?:[^'\\]|\\.)'")


def suppressed_rules(line: str) -> list[str]:
    m = ALLOW.search(line)
    if not m or m.group(1) is None:
        return []
    return [r.strip() for r in m.group(1).split(",") if r.strip()]


def allowed(line: str, rule: str) -> bool:
    return rule in suppressed_rules(line)


def strip_noise(line: str) -> str:
    """Removes string/char literals and trailing // comments so rule
    patterns only see code."""
    line = STRING.sub('""', line)
    return COMMENT.sub("", line)


def lint_file(path: pathlib.Path, repo: pathlib.Path,
              ast_rules: set[str]) -> list[str]:
    """Regex lint of one file. Rules named in `ast_rules` are skipped here
    because an AST pass covers them with type information."""
    findings: list[str] = []
    rel = path.relative_to(repo)
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        return [f"{rel}: unreadable: {err}"]

    def report(lineno: int, rule: str, message: str) -> None:
        findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    is_header = path.suffix == ".hpp"
    in_library = rel.parts[0] == "src"
    module = rel.parts[1] if in_library and len(rel.parts) > 2 else ""
    lines = text.splitlines()

    if is_header and not any(
        line.strip() == "#pragma once" for line in lines[:40]
    ):
        report(1, "pragma-once", "header does not start with #pragma once")

    # Names declared as unordered containers anywhere in this file (regex
    # fallback for unordered-iter; the AST mode resolves real types).
    unordered_names: set[str] = set()
    if "unordered-iter" not in ast_rules:
        for m in UNORDERED_DECL.finditer(text):
            unordered_names.add(m.group(1))

    in_block_comment = False
    for lineno, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2 :]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0 and "*/" not in line[start:]:
            in_block_comment = True
            line = line[:start]
        code = strip_noise(line)

        # Suppression hardening: every drn-lint marker must name known
        # rules. Checked on the RAW line (suppressions live in comments).
        allow_m = ALLOW.search(raw)
        if allow_m:
            named = suppressed_rules(raw)
            if not named:
                report(
                    lineno,
                    "bad-suppression",
                    "suppression must name the rule it waives: "
                    "// drn-lint: allow(<rule>)",
                )
            for rule_name in named:
                if rule_name not in KNOWN_RULES:
                    report(
                        lineno,
                        "bad-suppression",
                        f"unknown rule '{rule_name}' in suppression "
                        f"(known: {', '.join(sorted(KNOWN_RULES))})",
                    )

        for rule, pattern in RULES.items():
            if pattern.search(code) and not allowed(raw, rule):
                report(lineno, rule, f"forbidden pattern: {pattern.pattern}")
        if FLOAT_EQ.search(code) and not allowed(raw, "float-eq"):
            report(
                lineno,
                "float-eq",
                "exact ==/!= on a floating-point quantity "
                "(compare with a tolerance, or justify with "
                "// drn-lint: allow(float-eq))",
            )
        if (
            in_library
            and "#include <iostream>" in code
            and not allowed(raw, "iostream-lib")
        ):
            report(lineno, "iostream-lib", "<iostream> in library code")
        if (
            in_library
            and path.stem not in DENSE_MATRIX_EXEMPT
            and DENSE_MATRIX.search(code)
            and not allowed(raw, "dense-matrix")
        ):
            report(
                lineno,
                "dense-matrix",
                "from_placement builds the O(M^2) matrix; library code "
                "must go through radio::make_dense_gains (guarded) or the "
                "near/far engine",
            )
        if (
            in_library
            and path.stem not in POSITION_STATE_EXEMPT
            and POSITION_STATE.search(code)
            and not allowed(raw, "position-state")
        ):
            report(
                lineno,
                "position-state",
                "positions_ state belongs to the mobility model / grid "
                "index / near-far engine; move stations through "
                "Simulator::try_move_station instead",
            )
        if (
            "raw-unit-param" not in ast_rules
            and in_library
            and is_header
            and module in RAW_UNIT_DIRS
            and path.stem not in RAW_UNIT_EXEMPT
            and not allowed(raw, "raw-unit-param")
        ):
            m = RAW_UNIT_PARAM.search(code)
            if m:
                report(
                    lineno,
                    "raw-unit-param",
                    f"raw double parameter '{m.group(1)}' carries a unit "
                    "suffix; pass the strong type from common/units.hpp "
                    "instead",
                )
        if (
            "unordered-iter" not in ast_rules
            and in_library
            and module in UNORDERED_ITER_DIRS
            and not allowed(raw, "unordered-iter")
        ):
            m = RANGE_FOR.search(code)
            if m:
                expr = m.group(1).strip()
                base = re.split(r"[.\->(\[]", expr)[0].strip().rstrip("_")
                hits_decl = any(
                    n.rstrip("_") == base for n in unordered_names
                )
                if "unordered" in expr or hits_decl:
                    report(
                        lineno,
                        "unordered-iter",
                        "range-for over an unordered container: iteration "
                        "order is implementation-defined and breaks "
                        "bit-reproducibility; iterate a sorted copy",
                    )
        if (
            not (in_library and module == "sim")
            and RAW_EVENT_COPY.search(code)
            and not allowed(raw, "raw-event-copy")
        ):
            report(
                lineno,
                "raw-event-copy",
                "by-value sim::Event outside src/sim/; consume TxEvent/"
                "RxEvent observer structs or MacContext hooks instead",
            )
        if in_library and not allowed(raw, "layer-boundary"):
            # The include path IS a string literal, so search the comment-
            # stripped line rather than the literal-stripped `code`.
            m = PROJECT_INCLUDE.search(COMMENT.sub("", line))
            if m:
                reason = layer_boundary_reason(
                    module, path.stem, m.group(1)
                )
                if reason:
                    report(
                        lineno,
                        "layer-boundary",
                        f"include of \"{m.group(1)}\" crosses a layer "
                        f"boundary: {reason}",
                    )
        if (
            path.stem not in MANUAL_DB_EXEMPT
            and MANUAL_DB.search(code)
            and not allowed(raw, "manual-db")
        ):
            report(
                lineno,
                "manual-db",
                "hand-rolled dB conversion; use Decibels::to_linear() / "
                "LinearGain::to_db() (or radio::from_db/to_db at a "
                "raw-double boundary)",
            )
    return findings


# --- AST mode (libclang) --------------------------------------------------


def load_libclang():
    """Returns the clang.cindex module, or None when unavailable."""
    try:
        import clang.cindex  # type: ignore[import-not-found]

        # Force an index to verify the native library actually loads.
        clang.cindex.Index.create()
        return clang.cindex
    except Exception:  # noqa: BLE001 - any failure means "no AST mode"
        return None


UNIT_SUFFIXES = ("_s", "_w", "_db", "_bps", "_hz", "_m")


def ast_lint_file(cindex, path: pathlib.Path, repo: pathlib.Path,
                  include_dir: pathlib.Path) -> list[str]:
    """AST-grade raw-unit-param and unordered-iter for one file."""
    findings: list[str] = []
    rel = path.relative_to(repo)
    lines = path.read_text(encoding="utf-8").splitlines()

    def raw_line(lineno: int) -> str:
        return lines[lineno - 1] if 0 < lineno <= len(lines) else ""

    def report(lineno: int, rule: str, message: str) -> None:
        if not allowed(raw_line(lineno), rule):
            findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    index = cindex.Index.create()
    tu = index.parse(
        str(path),
        args=["-std=c++20", f"-I{include_dir}", "-x", "c++"],
    )

    module = rel.parts[1] if len(rel.parts) > 2 else ""
    check_params = (
        rel.parts[0] == "src"
        and module in RAW_UNIT_DIRS
        and path.suffix == ".hpp"
        and path.stem not in RAW_UNIT_EXEMPT
    )
    check_iter = rel.parts[0] == "src" and module in UNORDERED_ITER_DIRS

    def walk(node):
        if node.location.file and node.location.file.name != str(path):
            return  # only report on the file under lint, not its includes
        if (
            check_params
            and node.kind == cindex.CursorKind.PARM_DECL
            and node.type.get_canonical().spelling == "double"
            and node.spelling.endswith(UNIT_SUFFIXES)
        ):
            report(
                node.location.line,
                "raw-unit-param",
                f"raw double parameter '{node.spelling}' carries a unit "
                "suffix; pass the strong type from common/units.hpp instead",
            )
        if (
            check_iter
            and node.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT
        ):
            for child in node.get_children():
                t = child.type.get_canonical().spelling
                if "unordered_map" in t or "unordered_set" in t:
                    report(
                        node.location.line,
                        "unordered-iter",
                        "range-for over an unordered container: iteration "
                        "order is implementation-defined and breaks "
                        "bit-reproducibility; iterate a sorted copy",
                    )
                    break
        for child in node.get_children():
            walk(child)

    walk(tu.cursor)
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "roots",
        nargs="*",
        default=["src", "bench", "tools"],
        help="directories (relative to the repo root) to lint",
    )
    parser.add_argument(
        "--mode",
        choices=("auto", "regex", "ast"),
        default="auto",
        help="analysis mode: regex-only, libclang AST, or auto-detect",
    )
    args = parser.parse_args(argv)

    cindex = None
    if args.mode in ("auto", "ast"):
        cindex = load_libclang()
        if cindex is None:
            if args.mode == "ast":
                print(
                    "drn_lint: --mode ast requires libclang "
                    '(python3 -c "import clang.cindex" must succeed)',
                    file=sys.stderr,
                )
                return 2
            print(
                "drn_lint: libclang unavailable, falling back to regex mode",
                file=sys.stderr,
            )
    ast_rules: set[str] = (
        {"raw-unit-param", "unordered-iter"} if cindex else set()
    )

    repo = pathlib.Path(__file__).resolve().parent.parent
    files: list[pathlib.Path] = []
    for root in args.roots:
        base = repo / root
        if not base.is_dir():
            print(f"drn_lint: no such directory: {root}", file=sys.stderr)
            return 2
        files += sorted(base.rglob("*.cpp")) + sorted(base.rglob("*.hpp"))

    findings: list[str] = []
    for path in files:
        findings += lint_file(path, repo, ast_rules)
        if cindex is not None:
            findings += ast_lint_file(cindex, path, repo, repo / "src")

    for finding in findings:
        print(finding)
    mode_label = "ast" if cindex else "regex"
    print(
        f"drn_lint[{mode_label}]: {len(files)} files, "
        f"{len(findings)} findings",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
