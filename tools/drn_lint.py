#!/usr/bin/env python3
"""Project lint for the drn codebase (src/, bench/, tools/).

Enforces the determinism and hygiene rules the simulator's reproducibility
depends on, none of which clang-tidy checks:

  rand            no C rand()/srand(): unseedable per-stream, breaks sweep
                  determinism.
  std-rng         no <random> engines (mt19937, default_random_engine) or
                  std::random_device: all randomness flows through drn::Rng
                  so every stream is derived from the master seed.
  wall-clock-seed no time(NULL)/system_clock-derived values: results must be
                  a pure function of the command line.
  float-eq        no ==/!= where an operand is a float literal or carries a
                  unit suffix (_s,_w,_db,_bps,_hz,_m,_pps): exact equality
                  on computed physical quantities is almost always a bug.
  pragma-once     every header starts its include guard with #pragma once.
  using-std       no `using namespace std`.
  iostream-lib    no <iostream> in library code under src/: libraries report
                  through return values and exceptions, only CLIs print.
  dense-matrix    no PropagationMatrix::from_placement in library code under
                  src/ outside radio/propagation_matrix.* and
                  radio/interference_engine.*: the O(M^2) matrix only enters
                  library code via the guarded make_dense_gains route (or the
                  near/far engine, which never builds it).
  position-state  no positions_ member access in library code under src/
                  outside dynamics/mobility.*, geo/grid_index.* and
                  radio/interference_engine.*: station position state has
                  exactly those owners; every move must flow through
                  Simulator::try_move_station so gains, spatial index and
                  in-flight receptions are updated together.

Suppress a finding by appending `// drn-lint: allow(<rule>)` to the line,
which is a grep-able record that a human judged the exception sound.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

RULES = {
    "rand": re.compile(r"\b(?:std::)?s?rand\s*\("),
    "std-rng": re.compile(
        r"\bstd::(?:mt19937(?:_64)?|default_random_engine|minstd_rand0?"
        r"|random_device)\b"
    ),
    "wall-clock-seed": re.compile(
        r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)|\bsystem_clock\b"
    ),
    "using-std": re.compile(r"\busing\s+namespace\s+std\b"),
}

# An operand that makes ==/!= a floating-point comparison: a float literal
# (1.0, .5, 1e-9) or an identifier with a physical-unit suffix.
FLOAT_OPERAND = (
    r"(?:\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+"
    r"|[A-Za-z_][\w.\->\[\]]*_(?:s|w|db|bps|hz|m|pps)\b)"
)
FLOAT_EQ = re.compile(
    rf"(?:{FLOAT_OPERAND}\s*[=!]=|[=!]=\s*{FLOAT_OPERAND})"
)
# ==/!= inside relational contexts we must not misread: exact-match guards
# against <=, >=, ->, templates are handled by requiring a bare [=!]= above.

DENSE_MATRIX = re.compile(r"\bfrom_placement\s*\(")
# The only library files allowed to touch the O(M^2) dense-matrix build.
DENSE_MATRIX_EXEMPT = ("propagation_matrix", "interference_engine")

POSITION_STATE = re.compile(r"\bpositions_\b")
# The only library files allowed to hold or touch station position state.
POSITION_STATE_EXEMPT = ("mobility", "grid_index", "interference_engine")

ALLOW = re.compile(r"//\s*drn-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
COMMENT = re.compile(r"//.*$")
STRING = re.compile(r'"(?:[^"\\]|\\.)*"' + r"|'(?:[^'\\]|\\.)'")


def allowed(line: str, rule: str) -> bool:
    m = ALLOW.search(line)
    return bool(m) and rule in [r.strip() for r in m.group(1).split(",")]


def strip_noise(line: str) -> str:
    """Removes string/char literals and trailing // comments so rule
    patterns only see code."""
    line = STRING.sub('""', line)
    return COMMENT.sub("", line)


def lint_file(path: pathlib.Path, repo: pathlib.Path) -> list[str]:
    findings: list[str] = []
    rel = path.relative_to(repo)
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        return [f"{rel}: unreadable: {err}"]

    def report(lineno: int, rule: str, message: str) -> None:
        findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    is_header = path.suffix == ".hpp"
    in_library = rel.parts[0] == "src"
    lines = text.splitlines()

    if is_header and not any(
        line.strip() == "#pragma once" for line in lines[:40]
    ):
        report(1, "pragma-once", "header does not start with #pragma once")

    in_block_comment = False
    for lineno, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2 :]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0 and "*/" not in line[start:]:
            in_block_comment = True
            line = line[:start]
        code = strip_noise(line)

        for rule, pattern in RULES.items():
            if pattern.search(code) and not allowed(raw, rule):
                report(lineno, rule, f"forbidden pattern: {pattern.pattern}")
        if FLOAT_EQ.search(code) and not allowed(raw, "float-eq"):
            report(
                lineno,
                "float-eq",
                "exact ==/!= on a floating-point quantity "
                "(compare with a tolerance, or justify with "
                "// drn-lint: allow(float-eq))",
            )
        if (
            in_library
            and "#include <iostream>" in code
            and not allowed(raw, "iostream-lib")
        ):
            report(lineno, "iostream-lib", "<iostream> in library code")
        if (
            in_library
            and path.stem not in DENSE_MATRIX_EXEMPT
            and DENSE_MATRIX.search(code)
            and not allowed(raw, "dense-matrix")
        ):
            report(
                lineno,
                "dense-matrix",
                "from_placement builds the O(M^2) matrix; library code "
                "must go through radio::make_dense_gains (guarded) or the "
                "near/far engine",
            )
        if (
            in_library
            and path.stem not in POSITION_STATE_EXEMPT
            and POSITION_STATE.search(code)
            and not allowed(raw, "position-state")
        ):
            report(
                lineno,
                "position-state",
                "positions_ state belongs to the mobility model / grid "
                "index / near-far engine; move stations through "
                "Simulator::try_move_station instead",
            )
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "roots",
        nargs="*",
        default=["src", "bench", "tools"],
        help="directories (relative to the repo root) to lint",
    )
    args = parser.parse_args(argv)

    repo = pathlib.Path(__file__).resolve().parent.parent
    files: list[pathlib.Path] = []
    for root in args.roots:
        base = repo / root
        if not base.is_dir():
            print(f"drn_lint: no such directory: {root}", file=sys.stderr)
            return 2
        files += sorted(base.rglob("*.cpp")) + sorted(base.rglob("*.hpp"))

    findings: list[str] = []
    for path in files:
        findings += lint_file(path, repo)

    for finding in findings:
        print(finding)
    print(
        f"drn_lint: {len(files)} files, {len(findings)} findings",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
