// drn_sim — command-line driver for the whole stack: build a random network,
// pick a MAC, offer Poisson traffic, print the outcome. The quickest way for
// a downstream user to poke at the system without writing C++.
//
//   $ drn_sim --stations 50 --region 1200 --mac scheme --rate 300
//   $ drn_sim --mac aloha --seed 9 --csv-trace /tmp/trace.csv
//   $ drn_sim --help
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "audit/invariant_auditor.hpp"
#include "runner/json.hpp"
#include "baselines/aloha.hpp"
#include "baselines/csma.hpp"
#include "baselines/maca.hpp"
#include "baselines/slotted_aloha.hpp"
#include "core/network_builder.hpp"
#include "dynamics/dynamics.hpp"
#include "geo/placement.hpp"
#include "radio/interference_engine.hpp"
#include "radio/propagation.hpp"
#include "routing/dijkstra.hpp"
#include "routing/graph.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "sim/traffic.hpp"

namespace {

using namespace drn;

struct Options {
  std::size_t stations = 40;
  double region_m = 1000.0;
  std::uint64_t seed = 1;
  std::string mac = "scheme";
  double rate_pps = 200.0;
  double duration_s = 2.0;
  double drain_s = 60.0;
  double receive_fraction = 0.3;
  double slot_s = 0.01;
  double target_received_w = 1.0e-9;
  double max_power_w = 1.6e-4;
  double bandwidth_hz = 200.0e6;
  double data_rate_bps = 1.0e6;
  double margin_db = 5.0;
  bool dual_slope = false;
  double breakpoint_m = 100.0;
  double shadowing_db = 0.0;
  std::string engine = "compensated";
  double cutoff_m = 0.0;
  double cell_m = 0.0;
  std::string csv_trace;
  std::size_t trace_cap = 0;
  bool json = false;
  bool audit = false;
  bool help = false;
  // Network dynamics (src/dynamics/); all off by default.
  double churn_rate_per_s = 0.0;
  double churn_downtime_s = 5.0;
  double mobility_mps = 0.0;
  double mobility_step_s = 0.5;
  double drift_ppm_per_s = 0.0;
  double drift_step_s = 1.0;
  std::size_t jammers = 0;
  double jammer_period_s = 0.5;
  double jammer_duty = 0.2;
  double jammer_power_w = 1.0e-3;
  /// Maintenance beacon interval for the scheme under churn/drift; 0 = auto
  /// (0.5 s when churn or drift is on, otherwise no beacons).
  double beacon_s = 0.0;
};

void print_help() {
  std::cout <<
      R"(drn_sim - dense packet radio network simulator (Shepard, SIGCOMM '96)

usage: drn_sim [--key value]...

topology
  --stations N          station count               (default 40)
  --region METERS       disc radius                 (default 1000)
  --seed N              master seed                 (default 1)
  --dual-slope 0|1      two-ray propagation         (default 0 = free space)
  --breakpoint METERS   dual-slope breakpoint       (default 100)
  --shadowing DB        log-normal shadowing sigma  (default 0)

radio design point
  --bandwidth HZ        spread bandwidth W          (default 2e8)
  --data-rate BPS       design rate C               (default 1e6)
  --margin DB           detection margin            (default 5)
  --target-power W      delivered power target      (default 1e-9)
  --max-power W         transmit power limit        (default 1.6e-4)

channel access
  --mac NAME            scheme|aloha|slotted|csma|maca   (default scheme)
  --receive-fraction P  schedule receive duty p     (default 0.3)
  --slot S              slot duration               (default 0.01)

workload
  --rate PPS            aggregate Poisson offer     (default 200)
  --duration S          offer window                (default 2)
  --drain S             extra time to drain queues  (default 60)

interference engine
  --engine NAME         dense|compensated|nearfar   (default compensated)
                        dense = legacy subtract-and-clamp accounting (drifts
                        over long runs, kept as a baseline); compensated =
                        exact Neumaier accumulation; nearfar = grid-indexed
                        exact near field + aggregated far-field din
  --cutoff METERS       nearfar only: exact-summation radius (default 0 =
                        2x the free-space reach of the power budget)
  --cell METERS         nearfar only: grid cell side (default 0 = cutoff/4)

network dynamics (all off by default; see DESIGN.md "Network dynamics")
  --churn RATE          station crash rate, crashes/s  (default 0 = off)
  --churn-downtime S    mean downtime before rejoin    (default 5)
  --mobility MPS        random-waypoint speed          (default 0 = off)
  --mobility-step S     position update interval       (default 0.5)
  --drift PPMPS         clock slope half-width, ppm/s  (default 0 = off)
  --drift-step S        rate-step interval             (default 1)
  --jammers N           duty-cycled noise stations     (default 0)
  --jammer-period S     jammer burst period            (default 0.5)
  --jammer-duty F       fraction of period radiating   (default 0.2)
  --jammer-power W      jammer burst power             (default 1e-3)
  --beacon S            scheme maintenance-beacon interval; 0 = auto
                        (0.5 s when churn or drift is on)

output
  --csv-trace PATH      dump the physical-layer trace as CSV
  --trace-cap N         keep only the newest N trace events per stream
                        (0 = unbounded; requires --csv-trace)
  --json 0|1            one-line JSON summary instead of the table (default 0)
  --audit 0|1           re-derive the physics invariants (Type 1/2/3
                        taxonomy, SINR identities, half-duplex, despreading
                        cap) from the event stream and cross-check the
                        metrics; exit 4 on any violation (default 0)
  --help                this text
)";
}

bool parse(int argc, char** argv, Options& opt) {
  std::map<std::string, std::string> kv;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key == "--help" || key == "-h") {
      opt.help = true;
      return true;
    }
    if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
      std::cerr << "bad argument: " << key << " (try --help)\n";
      return false;
    }
    kv[key.substr(2)] = argv[++i];
  }
  auto num = [&](const char* name, double& out) {
    if (auto it = kv.find(name); it != kv.end()) {
      out = std::stod(it->second);
      kv.erase(it);
    }
  };
  auto integer = [&](const char* name, auto& out) {
    if (auto it = kv.find(name); it != kv.end()) {
      out = static_cast<std::remove_reference_t<decltype(out)>>(
          std::stoull(it->second));
      kv.erase(it);
    }
  };
  // Flags take exactly "0" or "1"; anything fuzzier is a user error.
  auto flag = [&](const char* name, bool& out) {
    auto it = kv.find(name);
    if (it == kv.end()) return true;
    if (it->second != "0" && it->second != "1") {
      std::cerr << "bad --" << name << " value: " << it->second
                << " (want 0 or 1)\n";
      return false;
    }
    out = it->second == "1";
    kv.erase(it);
    return true;
  };
  integer("stations", opt.stations);
  num("region", opt.region_m);
  integer("seed", opt.seed);
  if (auto it = kv.find("mac"); it != kv.end()) {
    opt.mac = it->second;
    kv.erase(it);
  }
  num("rate", opt.rate_pps);
  num("duration", opt.duration_s);
  num("drain", opt.drain_s);
  num("receive-fraction", opt.receive_fraction);
  num("slot", opt.slot_s);
  num("target-power", opt.target_received_w);
  num("max-power", opt.max_power_w);
  num("bandwidth", opt.bandwidth_hz);
  num("data-rate", opt.data_rate_bps);
  num("margin", opt.margin_db);
  if (!flag("dual-slope", opt.dual_slope)) return false;
  num("breakpoint", opt.breakpoint_m);
  num("shadowing", opt.shadowing_db);
  if (auto it = kv.find("engine"); it != kv.end()) {
    opt.engine = it->second;
    kv.erase(it);
  }
  num("cutoff", opt.cutoff_m);
  num("cell", opt.cell_m);
  if (auto it = kv.find("csv-trace"); it != kv.end()) {
    opt.csv_trace = it->second;
    kv.erase(it);
  }
  integer("trace-cap", opt.trace_cap);
  const bool jammer_knobs = kv.count("jammer-period") > 0 ||
                            kv.count("jammer-duty") > 0 ||
                            kv.count("jammer-power") > 0;
  num("churn", opt.churn_rate_per_s);
  num("churn-downtime", opt.churn_downtime_s);
  num("mobility", opt.mobility_mps);
  num("mobility-step", opt.mobility_step_s);
  num("drift", opt.drift_ppm_per_s);
  num("drift-step", opt.drift_step_s);
  integer("jammers", opt.jammers);
  num("jammer-period", opt.jammer_period_s);
  num("jammer-duty", opt.jammer_duty);
  num("jammer-power", opt.jammer_power_w);
  num("beacon", opt.beacon_s);
  if (!flag("json", opt.json)) return false;
  if (!flag("audit", opt.audit)) return false;
  if (!kv.empty()) {
    std::cerr << "unknown option: --" << kv.begin()->first << " (try --help)\n";
    return false;
  }
  if (opt.trace_cap > 0 && opt.csv_trace.empty()) {
    std::cerr << "--trace-cap only bounds a trace being recorded; "
                 "combine it with --csv-trace\n";
    return false;
  }
  if (!radio::parse_engine(opt.engine)) {
    std::cerr << "unknown --engine " << opt.engine << " (try --help)\n";
    return false;
  }
  if ((opt.cutoff_m > 0.0 || opt.cell_m > 0.0) && opt.engine != "nearfar") {
    std::cerr << "--cutoff/--cell tune the near/far engine; "
                 "combine them with --engine nearfar\n";
    return false;
  }
  if (opt.churn_rate_per_s < 0.0 || opt.mobility_mps < 0.0 ||
      opt.drift_ppm_per_s < 0.0) {
    std::cerr << "--churn/--mobility/--drift rates must be >= 0\n";
    return false;
  }
  if (opt.churn_rate_per_s > 0.0 && opt.churn_downtime_s <= 0.0) {
    std::cerr << "--churn-downtime must be > 0 when --churn is on\n";
    return false;
  }
  if (opt.mobility_mps > 0.0 && opt.mobility_step_s <= 0.0) {
    std::cerr << "--mobility-step must be > 0 when --mobility is on\n";
    return false;
  }
  if (opt.drift_ppm_per_s > 0.0 && opt.drift_step_s <= 0.0) {
    std::cerr << "--drift-step must be > 0 when --drift is on\n";
    return false;
  }
  if (opt.jammers > 0 &&
      (opt.jammer_period_s <= 0.0 || opt.jammer_duty <= 0.0 ||
       opt.jammer_duty > 1.0 || opt.jammer_power_w <= 0.0)) {
    std::cerr << "--jammer-period/--jammer-power must be > 0 and "
                 "--jammer-duty in (0, 1]\n";
    return false;
  }
  if (opt.jammers == 0 && jammer_knobs) {
    std::cerr << "--jammer-* tune the jammers; combine them with "
                 "--jammers N\n";
    return false;
  }
  if (opt.beacon_s < 0.0) {
    std::cerr << "--beacon must be >= 0\n";
    return false;
  }
  return true;
}

int run(const Options& opt) {
  Rng rng(opt.seed);
  const geo::Placement placement =
      geo::uniform_disc(opt.stations, opt.region_m, rng);

  std::shared_ptr<radio::PropagationModel> model;
  if (opt.dual_slope) {
    model = std::make_shared<radio::DualSlopePropagation>(radio::Meters{opt.breakpoint_m});
  } else {
    model = std::make_shared<radio::FreeSpacePropagation>();
  }
  if (opt.shadowing_db > 0.0) {
    model = std::make_shared<radio::LogNormalShadowing>(
        model, radio::Decibels{opt.shadowing_db}, opt.seed ^ 0x5AD0ull);
  }
  const auto gains = radio::PropagationMatrix::from_placement(placement, *model);
  const radio::ReceptionCriterion criterion(radio::Hertz{opt.bandwidth_hz},
                                            radio::BitsPerSecond{opt.data_rate_bps},
                                            radio::Decibels{opt.margin_db});

  core::ScheduledNetworkConfig net_cfg;
  net_cfg.slot_s = opt.slot_s;
  net_cfg.receive_fraction = opt.receive_fraction;
  net_cfg.target_received_w = opt.target_received_w;
  net_cfg.max_power_w = opt.max_power_w;
  // Under churn or drift the scheme needs maintenance beacons to evict
  // ghosts, re-adopt returnees and re-fit drifting clocks.
  const bool needs_beacons =
      opt.churn_rate_per_s > 0.0 || opt.drift_ppm_per_s > 0.0;
  if (opt.mac == "scheme" && (needs_beacons || opt.beacon_s > 0.0)) {
    net_cfg.beacon_interval_s = opt.beacon_s > 0.0 ? opt.beacon_s : 0.5;
    if (opt.churn_rate_per_s > 0.0) {
      net_cfg.neighbor_timeout_s = 12.0 * net_cfg.beacon_interval_s;
      net_cfg.readopt_neighbors = true;
    }
  }
  Rng build_rng = rng.split(1);
  auto net = core::build_scheduled_network(gains, criterion, net_cfg, build_rng);

  const double min_gain = opt.target_received_w / opt.max_power_w;
  const auto graph = routing::Graph::min_energy(gains, min_gain);
  const auto tables = routing::RoutingTables::build(graph);

  // Jammers are extra stations appended after the real network; routing and
  // traffic never touch them.
  geo::Placement all_placement = placement;
  if (opt.jammers > 0) {
    Rng jammer_rng = Rng(opt.seed).split(4);
    all_placement = dynamics::with_jammers(all_placement, opt.jammers,
                                           opt.region_m, jammer_rng);
  }
  sim::SimulatorConfig sim_cfg{criterion};
  sim_cfg.seed = opt.seed;
  const auto engine_kind = *radio::parse_engine(opt.engine);
  std::optional<sim::Simulator> sim_box;
  if (engine_kind == radio::InterferenceEngineKind::kNearFar) {
    radio::NearFarConfig nf;
    nf.cutoff = radio::Meters{
        opt.cutoff_m > 0.0 ? opt.cutoff_m : 2.0 / std::sqrt(min_gain)};
    nf.cell = radio::Meters{opt.cell_m};
    sim_box.emplace(radio::make_nearfar_engine(all_placement, model, nf),
                    sim_cfg);
  } else {
    sim_cfg.engine = engine_kind;
    if (opt.jammers > 0) {
      sim_box.emplace(
          radio::PropagationMatrix::from_placement(all_placement, *model),
          sim_cfg);
    } else {
      sim_box.emplace(gains, sim_cfg);
    }
  }
  sim::Simulator& sim = *sim_box;
  if (opt.mobility_mps > 0.0 &&
      engine_kind != radio::InterferenceEngineKind::kNearFar)
    sim.enable_mobility(all_placement, model);
  sim::TraceRecorder trace(opt.trace_cap);
  if (!opt.csv_trace.empty()) sim.add_observer(&trace);
  std::unique_ptr<audit::InvariantAuditor> auditor;
  if (opt.audit) {
    auditor = std::make_unique<audit::InvariantAuditor>(sim);
    sim.add_observer(auditor.get());
  }

  // One fresh-MAC builder shared by initial install and churn rejoin
  // (baselines reboot stateless; the scheme warm-reboots from a snapshot).
  std::function<std::unique_ptr<sim::MacProtocol>(StationId)> fresh_mac;
  if (opt.mac == "aloha" || opt.mac == "slotted" || opt.mac == "csma") {
    baselines::ContentionConfig cc;
    cc.power_w = opt.max_power_w;
    cc.max_retries = 6;
    cc.backoff_mean_s = opt.slot_s;
    fresh_mac = [cc, &opt](StationId) -> std::unique_ptr<sim::MacProtocol> {
      if (opt.mac == "aloha")
        return std::make_unique<baselines::PureAloha>(cc);
      if (opt.mac == "slotted")
        return std::make_unique<baselines::SlottedAloha>(cc,
                                                         opt.slot_s / 4.0);
      return std::make_unique<baselines::CsmaMac>(
          cc, 2.5 * opt.target_received_w);
    };
  } else if (opt.mac == "maca") {
    baselines::MacaConfig mc;
    mc.power_w = opt.max_power_w;
    mc.data_rate_bps = opt.data_rate_bps;
    fresh_mac = [mc](StationId) -> std::unique_ptr<sim::MacProtocol> {
      return std::make_unique<baselines::MacaMac>(mc);
    };
  } else if (opt.mac != "scheme") {
    std::cerr << "unknown --mac " << opt.mac << " (try --help)\n";
    return 2;
  }
  dynamics::MacFactory rejoin;
  if (opt.churn_rate_per_s > 0.0) {
    if (opt.mac == "scheme") {
      std::vector<core::ScheduledStationConfig> cfgs;
      std::vector<core::NeighborTable> tabs;
      cfgs.reserve(net.macs.size());
      tabs.reserve(net.macs.size());
      for (const auto& mac : net.macs) {
        cfgs.push_back(mac->config());
        tabs.push_back(mac->neighbors());
      }
      rejoin = [cfgs = std::move(cfgs), tabs = std::move(tabs)](StationId s) {
        return std::make_unique<core::ScheduledStation>(cfgs[s], tabs[s]);
      };
    } else {
      rejoin = fresh_mac;
    }
  }
  if (opt.mac == "scheme") {
    for (StationId s = 0; s < gains.size(); ++s)
      sim.set_mac(s, std::move(net.macs[s]));
  } else {
    for (StationId s = 0; s < gains.size(); ++s)
      sim.set_mac(s, fresh_mac(s));
  }
  if (opt.jammers > 0) {
    dynamics::JammerSpec js{opt.jammers, opt.jammer_period_s, opt.jammer_duty,
                            opt.jammer_power_w};
    dynamics::install_jammers(sim, opt.stations, js);
  }
  sim.set_router(tables.router());

  Rng traffic_rng = rng.split(2);
  for (const auto& inj : sim::poisson_traffic(
           opt.rate_pps, opt.duration_s, net.packet_bits,
           sim::uniform_pairs(gains.size()), traffic_rng))
    sim.inject(inj.time_s, inj.packet);
  const double total_s = opt.duration_s + opt.drain_s;
  dynamics::DynamicsConfig dc;
  dc.churn_rate_per_s = opt.churn_rate_per_s;
  dc.mean_downtime_s = opt.churn_downtime_s;
  dc.mobility_speed_mps = opt.mobility_mps;
  dc.mobility_step_s = opt.mobility_step_s;
  dc.mobility_region_m = opt.region_m;
  dc.drift_ppm_per_s = opt.drift_ppm_per_s;
  dc.drift_step_s = opt.drift_step_s;
  dc.jammer = {opt.jammers, opt.jammer_period_s, opt.jammer_duty,
               opt.jammer_power_w};
  std::optional<dynamics::DynamicsEngine> driver;
  if (dc.enabled()) {
    driver.emplace(dc, sim, all_placement, opt.stations, std::move(rejoin),
                   Rng(opt.seed).split(3));
    driver->run(total_s);
  } else {
    sim.run_until(total_s);
  }

  const auto& m = sim.metrics();
  if (auditor) {
    auditor->finalize(total_s);
    auditor->cross_check(m);
  }
  const bool audit_failed = auditor && !auditor->ok();
  double median_recovery_s = 0.0;
  if (driver && !driver->recovery_samples().empty()) {
    std::vector<double> samples = driver->recovery_samples();
    std::sort(samples.begin(), samples.end());
    median_recovery_s = samples[samples.size() / 2];
  }
  if (opt.json) {
    // One machine-readable line on stdout (schema drn-sim-v2), nothing else.
    runner::json::Writer w(std::cout, 0);
    w.begin_object();
    w.key("schema").value("drn-sim-v2");
    w.key("stations").value(opt.stations);
    w.key("region_m").value(opt.region_m);
    w.key("mac").value(opt.mac);
    w.key("engine").value(opt.engine);
    w.key("seed").value(opt.seed);
    w.key("rate_pps").value(opt.rate_pps);
    w.key("duration_s").value(opt.duration_s);
    w.key("connected").value(graph.connected());
    w.key("offered").value(m.offered());
    w.key("delivered").value(m.delivered());
    w.key("delivery_ratio").value(m.delivery_ratio());
    w.key("hop_attempts").value(m.hop_attempts());
    w.key("type1_losses").value(m.losses(sim::LossType::kType1));
    w.key("type2_losses").value(m.losses(sim::LossType::kType2));
    w.key("type3_losses").value(m.losses(sim::LossType::kType3));
    w.key("mac_drops").value(m.mac_drops());
    w.key("mean_delay_s").value(m.delivered() > 0 ? m.delay().mean() : 0.0);
    w.key("mean_hops").value(m.delivered() > 0 ? m.hops().mean() : 0.0);
    w.key("mean_duty").value(m.mean_duty_cycle(total_s));
    if (driver) {
      w.key("aborted_losses").value(m.losses(sim::LossType::kAborted));
      w.key("station_leaves").value(m.station_leaves());
      w.key("station_joins").value(m.station_joins());
      w.key("churn_drops").value(m.churn_drops());
      w.key("noise_bursts").value(m.noise_bursts());
      w.key("recoveries").value(m.recovery_s().count());
      w.key("median_recovery_s").value(median_recovery_s);
    }
    if (auditor) {
      w.key("audit_checks").value(auditor->checks_run());
      w.key("audit_violations").value(auditor->violation_count());
    }
    w.end_object();
    std::cout << '\n';
    if (audit_failed) std::cerr << auditor->report();
    if (!opt.csv_trace.empty()) {
      std::ofstream out(opt.csv_trace);
      if (!out) {
        std::cerr << "cannot write " << opt.csv_trace << '\n';
        return 3;
      }
      trace.write_transmissions_csv(out);
      out << '\n';
      trace.write_receptions_csv(out);
    }
    return audit_failed ? 4 : 0;
  }
  std::cout << "drn_sim: " << opt.stations << " stations, " << opt.region_m
            << " m disc, MAC=" << opt.mac << ", seed=" << opt.seed << ", "
            << (graph.connected() ? "connected" : "NOT fully connected")
            << " (min usable gain " << min_gain << ", free-space reach "
            << 1.0 / std::sqrt(min_gain) << " m)\n\n";
  analysis::Table t({"metric", "value"});
  t.add_row({"offered packets", analysis::Table::num(m.offered())});
  t.add_row({"delivered", analysis::Table::num(m.delivered())});
  t.add_row({"delivery ratio", analysis::Table::num(m.delivery_ratio(), 4)});
  t.add_row({"hop attempts", analysis::Table::num(m.hop_attempts())});
  t.add_row({"type 1 losses", analysis::Table::num(m.losses(sim::LossType::kType1))});
  t.add_row({"type 2 losses", analysis::Table::num(m.losses(sim::LossType::kType2))});
  t.add_row({"type 3 losses", analysis::Table::num(m.losses(sim::LossType::kType3))});
  t.add_row({"MAC drops (incl. unroutable)", analysis::Table::num(m.mac_drops())});
  if (m.delivered() > 0) {
    t.add_row({"mean delay (ms)", analysis::Table::num(m.delay().mean() * 1e3, 2)});
    t.add_row({"mean hops", analysis::Table::num(m.hops().mean(), 2)});
  }
  t.add_row({"mean transmit duty",
             analysis::Table::num(m.mean_duty_cycle(total_s), 4)});
  if (driver) {
    t.add_row({"aborted (churn) losses",
               analysis::Table::num(m.losses(sim::LossType::kAborted))});
    t.add_row({"station leaves / joins",
               analysis::Table::num(m.station_leaves()) + " / " +
                   analysis::Table::num(m.station_joins())});
    t.add_row({"churn queue drops", analysis::Table::num(m.churn_drops())});
    t.add_row({"jammer noise bursts", analysis::Table::num(m.noise_bursts())});
    if (m.recovery_s().count() > 0) {
      t.add_row({"recoveries measured",
                 analysis::Table::num(m.recovery_s().count())});
      t.add_row({"median recovery (s)",
                 analysis::Table::num(median_recovery_s, 3)});
    }
  }
  if (auditor) {
    t.add_row({"audit checks", analysis::Table::num(auditor->checks_run())});
    t.add_row({"audit violations",
               analysis::Table::num(auditor->violation_count())});
  }
  t.print(std::cout);
  if (audit_failed) std::cout << '\n' << auditor->report();

  if (!opt.csv_trace.empty()) {
    std::ofstream out(opt.csv_trace);
    if (!out) {
      std::cerr << "cannot write " << opt.csv_trace << '\n';
      return 3;
    }
    trace.write_transmissions_csv(out);
    out << '\n';
    trace.write_receptions_csv(out);
    std::cout << "\ntrace written to " << opt.csv_trace << '\n';
    if (trace.dropped_transmissions() > 0 || trace.dropped_receptions() > 0) {
      std::cout << "trace cap shed " << trace.dropped_transmissions()
                << " transmissions, " << trace.dropped_receptions()
                << " receptions\n";
    }
  }
  return audit_failed ? 4 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return 2;
  if (opt.help) {
    print_help();
    return 0;
  }
  try {
    return run(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
