#!/usr/bin/env python3
"""Unit tests for tools/drn_lint.py itself: each rule must fire on a minimal
fixture, stay quiet on the sanctioned idiom, and the suppression machinery
must demand a known rule name. Registered as the drn_lint_selftest ctest."""

from __future__ import annotations

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import drn_lint  # noqa: E402


class LintFixture(unittest.TestCase):
    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory()
        self.repo = pathlib.Path(self._tmp.name)

    def tearDown(self) -> None:
        self._tmp.cleanup()

    def lint(self, rel: str, text: str) -> list[str]:
        path = self.repo / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return drn_lint.lint_file(path, self.repo, ast_rules=set())

    def rules(self, findings: list[str]) -> set[str]:
        return {f.split("[", 1)[1].split("]", 1)[0] for f in findings}


class SuppressionHardening(LintFixture):
    def test_named_suppression_waives_the_finding(self) -> None:
        f = self.lint(
            "src/sim/a.cpp",
            "int f() { return rand(); }  // drn-lint: allow(rand)\n",
        )
        self.assertEqual(f, [])

    def test_bare_allow_is_reported(self) -> None:
        f = self.lint(
            "src/sim/a.cpp",
            "int f() { return rand(); }  // drn-lint: allow\n",
        )
        self.assertIn("bad-suppression", self.rules(f))
        self.assertIn("rand", self.rules(f))  # and does NOT waive the rule

    def test_empty_allow_is_reported(self) -> None:
        f = self.lint(
            "src/sim/a.cpp",
            "int f() { return rand(); }  // drn-lint: allow()\n",
        )
        self.assertIn("bad-suppression", self.rules(f))
        self.assertIn("rand", self.rules(f))

    def test_unknown_rule_name_is_reported(self) -> None:
        f = self.lint(
            "src/sim/a.cpp",
            "int x = 0;  // drn-lint: allow(no-such-rule)\n",
        )
        self.assertIn("bad-suppression", self.rules(f))
        self.assertIn("no-such-rule", " ".join(f))

    def test_wrong_rule_does_not_waive_another(self) -> None:
        f = self.lint(
            "src/sim/a.cpp",
            "int f() { return rand(); }  // drn-lint: allow(float-eq)\n",
        )
        self.assertIn("rand", self.rules(f))


class RawUnitParam(LintFixture):
    HEADER = "#pragma once\n"

    def test_fires_on_suffixed_double_param_in_radio_header(self) -> None:
        f = self.lint(
            "src/radio/foo.hpp",
            self.HEADER + "void set_noise(double noise_w);\n",
        )
        self.assertIn("raw-unit-param", self.rules(f))

    def test_fires_in_analysis_header(self) -> None:
        f = self.lint(
            "src/analysis/foo.hpp",
            self.HEADER + "double wait(double slot_s, int n);\n",
        )
        self.assertIn("raw-unit-param", self.rules(f))

    def test_quiet_on_strong_type_param(self) -> None:
        f = self.lint(
            "src/radio/foo.hpp",
            self.HEADER + "void set_noise(Watts noise);\n",
        )
        self.assertEqual(f, [])

    def test_quiet_on_suffixed_function_name(self) -> None:
        # `double margin_db() const` is a sanctioned raw READ, not a param.
        f = self.lint(
            "src/radio/foo.hpp",
            self.HEADER + "[[nodiscard]] double margin_db() const;\n",
        )
        self.assertEqual(f, [])

    def test_quiet_in_units_boundary_file(self) -> None:
        f = self.lint(
            "src/radio/units.hpp",
            self.HEADER + "double from_db(double db);\n",
        )
        self.assertEqual(f, [])

    def test_quiet_outside_radio_and_analysis(self) -> None:
        f = self.lint(
            "src/sim/foo.hpp",
            self.HEADER + "void set_noise(double noise_w);\n",
        )
        self.assertEqual(f, [])

    def test_quiet_in_cpp_files(self) -> None:
        # Internal engine arithmetic stays raw double by design.
        f = self.lint(
            "src/radio/foo.cpp", "static double scale(double gain_db);\n"
        )
        self.assertEqual(f, [])


class UnorderedIter(LintFixture):
    def test_fires_on_range_for_over_declared_unordered(self) -> None:
        f = self.lint(
            "src/sim/foo.cpp",
            "std::unordered_map<int, double> acc_;\n"
            "double total() {\n"
            "  double t = 0;\n"
            "  for (const auto& [k, v] : acc_) t += v;\n"
            "  return t;\n"
            "}\n",
        )
        self.assertIn("unordered-iter", self.rules(f))

    def test_fires_on_inline_unordered_expression(self) -> None:
        f = self.lint(
            "src/radio/foo.cpp",
            "void g(std::unordered_set<int> s) {\n"
            "  for (int x : unordered_of(s)) use(x);\n"
            "}\n",
        )
        self.assertIn("unordered-iter", self.rules(f))

    def test_quiet_on_vector_iteration(self) -> None:
        f = self.lint(
            "src/sim/foo.cpp",
            "std::vector<double> acc_;\n"
            "double total() {\n"
            "  double t = 0;\n"
            "  for (double v : acc_) t += v;\n"
            "  return t;\n"
            "}\n",
        )
        self.assertEqual(f, [])

    def test_quiet_outside_sim_and_radio(self) -> None:
        f = self.lint(
            "src/analysis/foo.cpp",
            "std::unordered_map<int, int> m_;\n"
            "void f() { for (const auto& kv : m_) use(kv); }\n",
        )
        self.assertEqual(f, [])


class ManualDb(LintFixture):
    def test_fires_on_pow_ten_over_ten(self) -> None:
        f = self.lint(
            "src/core/foo.cpp",
            "double g(double db) { return std::pow(10.0, db / 10.0); }\n",
        )
        self.assertIn("manual-db", self.rules(f))

    def test_fires_on_ten_log_ten(self) -> None:
        f = self.lint(
            "bench/foo.cpp",
            "double g(double x) { return 10.0 * std::log10(x); }\n",
        )
        self.assertIn("manual-db", self.rules(f))

    def test_quiet_on_decade_pow(self) -> None:
        # pow(10, n) without /10 is a decade count, not a dB conversion.
        f = self.lint(
            "bench/foo.cpp",
            "double g(int n) { return std::pow(10.0, n); }\n",
        )
        self.assertEqual(f, [])

    def test_quiet_in_units_files(self) -> None:
        f = self.lint(
            "src/common/units.cpp",
            "double from_db(double db) { return std::pow(10.0, db / 10.0); }\n",
        )
        self.assertEqual(f, [])


class RawEventCopy(LintFixture):
    def test_fires_on_by_value_event_in_other_library_code(self) -> None:
        f = self.lint(
            "src/core/foo.cpp",
            "void f(sim::EventQueue& q) { sim::Event e = q.pop(); }\n",
        )
        self.assertIn("raw-event-copy", self.rules(f))

    def test_fires_on_unqualified_event_in_bench(self) -> None:
        f = self.lint(
            "bench/foo.cpp",
            "Event make(double t) { Event e; return e; }\n",
        )
        self.assertIn("raw-event-copy", self.rules(f))

    def test_quiet_inside_src_sim(self) -> None:
        f = self.lint(
            "src/sim/foo.cpp",
            "Event next() { Event e = queue_.pop(); return e; }\n",
        )
        self.assertEqual(f, [])

    def test_quiet_on_observer_structs_and_event_types(self) -> None:
        f = self.lint(
            "src/audit/foo.cpp",
            "void g(const sim::TxEvent tx, sim::RxEvent rx) {}\n"
            "sim::EventKind k() { sim::EventHandle h{}; return {}; }\n",
        )
        self.assertEqual(f, [])

    def test_quiet_on_event_reference(self) -> None:
        f = self.lint(
            "src/core/foo.cpp",
            "void h(const sim::Event& e);\n",
        )
        self.assertEqual(f, [])

    def test_suppression_waives(self) -> None:
        f = self.lint(
            "bench/foo.cpp",
            "sim::Event e;  // drn-lint: allow(raw-event-copy)\n",
        )
        self.assertEqual(f, [])


class LayerBoundary(LintFixture):
    def test_fires_on_radio_including_sim(self) -> None:
        f = self.lint(
            "src/radio/foo.cpp",
            '#include "sim/simulator.hpp"\n',
        )
        self.assertIn("layer-boundary", self.rules(f))

    def test_fires_on_sim_including_runner(self) -> None:
        f = self.lint(
            "src/sim/foo.cpp",
            '#include "runner/scenario.hpp"\n',
        )
        self.assertIn("layer-boundary", self.rules(f))

    def test_fires_on_sim_including_dynamics(self) -> None:
        f = self.lint(
            "src/sim/foo.cpp",
            '#include "dynamics/dynamics.hpp"\n',
        )
        self.assertIn("layer-boundary", self.rules(f))

    def test_fires_on_medium_including_mac(self) -> None:
        f = self.lint(
            "src/sim/medium.hpp",
            '#pragma once\n#include "sim/mac.hpp"\n',
        )
        self.assertIn("layer-boundary", self.rules(f))

    def test_quiet_on_other_sim_files_including_mac(self) -> None:
        # Only the medium is MAC-free; the host exists to own MACs.
        f = self.lint(
            "src/sim/station_host.hpp",
            '#pragma once\n#include "sim/mac.hpp"\n',
        )
        self.assertEqual(f, [])

    def test_quiet_on_sim_including_radio(self) -> None:
        # Downward includes are the sanctioned direction.
        f = self.lint(
            "src/sim/foo.cpp",
            '#include "radio/interference_engine.hpp"\n',
        )
        self.assertEqual(f, [])

    def test_quiet_on_dynamics_including_sim(self) -> None:
        # Drivers above the simulator include down into it freely.
        f = self.lint(
            "src/dynamics/foo.cpp",
            '#include "sim/simulator.hpp"\n',
        )
        self.assertEqual(f, [])

    def test_quiet_outside_the_library(self) -> None:
        # Tests/benches wire all layers together by design; the rule only
        # constrains src/. (bench/ is linted, so assert on it directly.)
        f = self.lint(
            "bench/foo.cpp",
            '#include "sim/simulator.hpp"\n'
            '#include "runner/scenario.hpp"\n',
        )
        self.assertEqual(f, [])

    def test_commented_out_include_is_quiet(self) -> None:
        f = self.lint(
            "src/radio/foo.cpp",
            '// #include "sim/simulator.hpp"\n',
        )
        self.assertEqual(f, [])

    def test_suppression_waives(self) -> None:
        f = self.lint(
            "src/sim/foo.cpp",
            '#include "runner/json.hpp"'
            "  // drn-lint: allow(layer-boundary)\n",
        )
        self.assertEqual(f, [])


class ExistingRulesStillFire(LintFixture):
    def test_std_rng(self) -> None:
        f = self.lint("src/sim/a.cpp", "std::mt19937 gen;\n")
        self.assertIn("std-rng", self.rules(f))

    def test_float_eq(self) -> None:
        f = self.lint("src/sim/a.cpp", "if (x == 1.0) {}\n")
        self.assertIn("float-eq", self.rules(f))

    def test_pragma_once(self) -> None:
        f = self.lint("src/sim/a.hpp", "int x;\n")
        self.assertIn("pragma-once", self.rules(f))


class RepoIsClean(unittest.TestCase):
    def test_lint_main_exits_zero_on_the_repo(self) -> None:
        # End-to-end: the real tree must be clean in regex mode.
        self.assertEqual(drn_lint.main(["--mode", "regex"]), 0)


if __name__ == "__main__":
    unittest.main()
